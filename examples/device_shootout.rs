//! Device shootout: make the paper's architecture-awareness argument
//! visible. Runs the *same* work — dense×dense vs sparse×sparse partial
//! products — through both device models and prints per-flop costs,
//! showing why `A_H × B_H` belongs on the CPU and `A_L × B_L` on the GPU
//! (§V-C: "the CPU is more appropriate for multiplying dense matrices
//! where it can use techniques such as cache-blocking, and the GPU is more
//! appropriate for multiplying rows with small density").
//!
//! ```text
//! cargo run --release --example device_shootout
//! ```
//!
//! Doubles as the CI smoke-perf probe: after the per-flop table it
//!
//! * times the host-side two-pass Gustavson engine against the legacy
//!   tuple-sort path on a small synthetic matrix;
//! * times the Phase-I empirical threshold search serial vs
//!   candidate-parallel and runs a Figure-8-style threshold sweep on three
//!   probe matrices, failing if any picked threshold drifts from the
//!   committed goldens (`tests/golden/thresholds.txt`);
//! * times end-to-end `hh_cpu` per-claim vs batched, and fixed dense-SPA
//!   vs the adaptive row-binned accumulator engine, on every Table I
//!   clone, failing on any bit of output or profile drift, and emits
//!   per-bin row/entry/throughput tallies (`spa_bin_*`);
//! * gates the fused single-pass tier bit-for-bit against the two-pass
//!   oracle on every Table I clone, then times the warm artifact-reuse
//!   path off vs on at the larger scale-8 clones, CPU-time over
//!   interleaved reps (`fused_perf`);
//! * times the host numeric engine with SIMD dispatch forced to the scalar
//!   oracle vs auto-detected (`simd_perf`), and the register-tiled csrmm
//!   sweep vs the naive reference (`csrmm_perf`), failing hard on any bit
//!   drift between levels;
//! * replays the serve-layer request trace cold vs warm through
//!   `SpmmService`, failing on any warm-vs-cold bit drift;
//! * writes every wall-clock number to `BENCH_pr.json` (override the path
//!   with `BENCH_JSON`), which `ci/check_bench_floors.py` gates against
//!   `tests/golden/bench_floors.json`.

use std::time::Instant;

use hetero_spmm::core::kernels::{product_tuples, row_products};
use hetero_spmm::core::merge::{concat_row_blocks, merge_tuples};
use hetero_spmm::core::shard::io_mode;
use hetero_spmm::core::{hh_cpu_with_artifacts, threshold, SpmmArtifacts, SymbolicStructure};
use hetero_spmm::hetsim::{CpuDevice, GpuDevice};
use hetero_spmm::parallel::ThreadPool;
use hetero_spmm::prelude::*;
use hetero_spmm::serve::{replay, MultiplyRequest, ReplayOptions, ServiceConfig, SpmmService};
use hetero_spmm::sparse::binning::{fused, stats as bin_stats};

fn run(name: &str, a: &CsrMatrix<f64>, cpu: &mut CpuDevice, gpu: &mut GpuDevice) {
    cpu.reset();
    gpu.reset();
    let rows: Vec<usize> = (0..a.nrows()).collect();
    let flops = reference::flops(a, a) as f64;
    let cpu_ns = cpu.spmm_cost(a, a, rows.iter().copied(), None);
    let gpu_ns = gpu.spmm_cost(a, a, rows.iter().copied(), None);
    let winner = if cpu_ns < gpu_ns { "CPU" } else { "GPU" };
    println!(
        "{name:<28} {:>8.0}k flops | CPU {:>7.3} ns/flop | GPU {:>7.3} ns/flop | {winner} wins {:.2}x",
        flops / 1e3,
        cpu_ns / flops,
        gpu_ns / flops,
        (cpu_ns / gpu_ns).max(gpu_ns / cpu_ns)
    );
}

fn main() {
    let platform = Platform::paper();
    let mut cpu = CpuDevice::new(platform.cpu);
    let mut gpu = GpuDevice::new(platform.gpu);
    println!(
        "platform: {} CPU cores + {} GPU SMX ({}-wide warps)\n",
        platform.cpu.cores, platform.gpu.sms, platform.gpu.warp_width
    );

    // Dense × dense: few rows, many nonzeros each — the A_H × B_H shape.
    let dense = scale_free_matrix::<f64>(&GeneratorConfig {
        nrows: 512,
        ncols: 512,
        target_nnz: 512 * 200,
        distribution: RowSizeDistribution::NearUniform { spread: 20 },
        seed: 1,
    });
    run("dense x dense (A_H·B_H)", &dense, &mut cpu, &mut gpu);

    // Sparse × sparse: many rows, 2–3 nonzeros each — the A_L × B_L shape.
    let sparse = scale_free_matrix::<f64>(&GeneratorConfig {
        nrows: 60_000,
        ncols: 60_000,
        target_nnz: 60_000 * 2,
        distribution: RowSizeDistribution::NearUniform { spread: 1 },
        seed: 2,
    });
    run("sparse x sparse (A_L·B_L)", &sparse, &mut cpu, &mut gpu);

    // Mixed scale-free: what each device sees without the HH-CPU split.
    let mixed =
        scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(30_000, 150_000, 2.1, 3));
    run("mixed scale-free (no split)", &mixed, &mut cpu, &mut gpu);

    println!(
        "\nthe split exists because each device is fastest on a different shape —\n\
         assigning the \"right\" work to the \"right\" processor is the paper's thesis."
    );

    let engine = smoke_perf();
    let phase1 = phase1_perf();
    let exec = exec_perf();
    let spa = spa_perf();
    let fused = fused_perf();
    let simd = simd_perf();
    let csrmm = csrmm_perf();
    let shard = shard_perf();
    let serve = serve_perf();

    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_pr.json".into());
    let json = format!(
        "{{\n{engine},\n{phase1},\n{exec},\n{spa},\n{fused},\n{simd},\n{csrmm},\n{shard},\n{serve}\n}}\n"
    );
    std::fs::write(&path, json).expect("write smoke-perf artifact");
    println!("wrote {path}");
}

/// Time the two host numeric backends on one small scale-free product and
/// return the JSON fragment for the CI artifact.
fn smoke_perf() -> String {
    let a = scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(4_000, 40_000, 2.1, 7));
    let pool = ThreadPool::new(4);
    let rows: Vec<usize> = (0..a.nrows()).collect();
    let reps = 5;

    // warm-up + correctness cross-check before timing anything
    let via_engine = {
        let block = row_products(&a, &a, &rows, None, &pool);
        concat_row_blocks(&[block], (a.nrows(), a.ncols()), &pool)
    };
    let via_tuples = merge_tuples(
        product_tuples(&a, &a, &rows, None, &pool),
        (a.nrows(), a.ncols()),
        &pool,
    );
    assert!(
        via_engine.approx_eq(&via_tuples, 1e-9, 1e-12),
        "smoke-perf backends disagree"
    );

    let mut engine_ms = f64::INFINITY;
    let mut tuple_ms = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let block = row_products(&a, &a, &rows, None, &pool);
        let c = concat_row_blocks(&[block], (a.nrows(), a.ncols()), &pool);
        engine_ms = engine_ms.min(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(c);

        let t = Instant::now();
        let tuples = product_tuples(&a, &a, &rows, None, &pool);
        let c = merge_tuples(tuples, (a.nrows(), a.ncols()), &pool);
        tuple_ms = tuple_ms.min(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(c);
    }

    println!(
        "\nsmoke-perf (n={}, nnz={}, nnz(C)={}, best of {reps}):\n\
         two-pass engine {engine_ms:.2} ms | tuple sort {tuple_ms:.2} ms | ratio {:.2}x",
        a.nrows(),
        a.nnz(),
        via_engine.nnz(),
        tuple_ms / engine_ms,
    );

    format!(
        "  \"matrix\": {{\"nrows\": {}, \"nnz\": {}, \"output_nnz\": {}}},\n  \
         \"repetitions\": {reps},\n  \
         \"engine_ms\": {engine_ms:.4},\n  \
         \"tuple_path_ms\": {tuple_ms:.4},\n  \
         \"engine_speedup\": {:.4}",
        a.nrows(),
        a.nnz(),
        via_engine.nnz(),
        tuple_ms / engine_ms,
    )
}

/// Log-spaced threshold ladder between the degenerate ends (the Figure 8
/// sweep shape).
fn ladder(max_row: usize) -> Vec<usize> {
    let mut out = vec![0];
    let mut t = 2usize;
    while t <= max_row {
        out.push(t);
        t *= 2;
    }
    out.push(max_row + 1);
    out
}

/// Time the Phase-I empirical threshold search serial (one host thread) vs
/// candidate-parallel (host pool) on three probe matrices, run a
/// Figure-8-style sweep on each, and verify every pick against the
/// committed goldens. Returns the JSON fragment for the CI artifact.
fn phase1_perf() -> String {
    let golden: Vec<(&str, usize)> = include_str!("../tests/golden/thresholds.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next().expect("golden line: name");
            let t = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("golden line: threshold");
            (name, t)
        })
        .collect();
    let golden_for = |name: &str| -> usize {
        golden
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no golden threshold for {name}"))
            .1
    };

    // the smoke matrix plus two Table I clones, each with its matched
    // platform scale (small catalog matrices shrink less than SPMM_SCALE)
    let mut cases: Vec<(&str, CsrMatrix<f64>, usize)> = vec![(
        "smoke",
        scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(4_000, 40_000, 2.1, 7)),
        32,
    )];
    for name in ["wiki-Vote", "email-Enron"] {
        let d = Dataset::by_name(name).unwrap();
        cases.push((name, d.load(32), d.effective_scale(32)));
    }

    let policy = ThresholdPolicy::Empirical { candidates: 10 };
    let host_threads = ThreadPool::host().num_threads();
    let reps = 3;
    println!("\nphase-I search (host pool = {host_threads} threads, best of {reps}):");

    let mut rows = Vec::new();
    let (mut serial_total, mut parallel_total) = (0.0f64, 0.0f64);
    for (name, a, eff) in &cases {
        let serial_ctx = HeteroContext::scaled(*eff).with_host_threads(1);
        let parallel_ctx = HeteroContext::scaled(*eff);

        let (mut serial_ms, mut parallel_ms) = (f64::INFINITY, f64::INFINITY);
        let (mut pick_serial, mut pick_parallel) = (0usize, 0usize);
        for _ in 0..reps {
            let t0 = Instant::now();
            pick_serial = threshold::identify(&serial_ctx, a, a, policy).t_a;
            serial_ms = serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);

            let t0 = Instant::now();
            pick_parallel = threshold::identify(&parallel_ctx, a, a, policy).t_a;
            parallel_ms = parallel_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        // the hard gate: the candidate-parallel search must agree with the
        // serial one, and both must match the committed golden pick
        assert_eq!(
            pick_serial, pick_parallel,
            "{name}: parallel Phase-I search diverged from serial"
        );
        assert_eq!(
            pick_serial,
            golden_for(name),
            "{name}: Phase-I threshold drifted from tests/golden/thresholds.txt"
        );

        // fig08-style sweep: symbolic structure built once, every ladder
        // threshold estimated from it
        let t0 = Instant::now();
        let sym = SymbolicStructure::from_matrix(a);
        let totals: Vec<f64> = ladder(a.max_row_nnz())
            .into_iter()
            .map(|t| {
                let (p2, p3) =
                    threshold::estimate_phases_with(&parallel_ctx, a, a, t.max(1), &sym, &sym);
                p2 + p3
            })
            .collect();
        let sweep_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            totals.iter().all(|t| t.is_finite()),
            "{name}: sweep produced a non-finite estimate"
        );

        println!(
            "  {name:<14} t={pick_serial:<5} serial {serial_ms:>8.2} ms | parallel {parallel_ms:>8.2} ms | \
             {:.2}x | sweep ({} pts) {sweep_ms:.2} ms",
            serial_ms / parallel_ms,
            totals.len(),
        );
        serial_total += serial_ms;
        parallel_total += parallel_ms;
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"threshold\": {pick_serial}, \
             \"serial_ms\": {serial_ms:.4}, \"parallel_ms\": {parallel_ms:.4}, \
             \"speedup\": {:.4}, \"sweep_points\": {}, \"sweep_ms\": {sweep_ms:.4}}}",
            serial_ms / parallel_ms,
            totals.len(),
        ));
    }
    println!(
        "  phase-I total: serial {serial_total:.2} ms | parallel {parallel_total:.2} ms | {:.2}x \
         (speedup needs a multi-core runner)",
        serial_total / parallel_total
    );

    format!(
        "  \"phase1_host_threads\": {host_threads},\n  \
         \"phase1_serial_ms\": {serial_total:.4},\n  \
         \"phase1_parallel_ms\": {parallel_total:.4},\n  \
         \"phase1_speedup\": {:.4},\n  \
         \"phase1_matrices\": [\n{}\n  ]",
        serial_total / parallel_total,
        rows.join(",\n"),
    )
}

/// Time end-to-end `hh_cpu` — Phase I through the merge — with the
/// per-claim reference executor vs the batched plan/execute path on every
/// Table I clone, and fail hard if the batched product or its simulated
/// profile deviates by a single bit. Returns the JSON fragment for the CI
/// artifact.
fn exec_perf() -> String {
    let threads = 8;
    let reps = 2;
    let serial_cfg = HhCpuConfig {
        exec: ExecPolicy::PerClaim,
        ..HhCpuConfig::default()
    };
    let batched_cfg = HhCpuConfig::default();

    println!("\nexec-perf: hh_cpu end to end, per-claim vs batched executor ({threads} host threads, best of {reps}):");
    let mut rows = Vec::new();
    let (mut serial_total, mut batched_total) = (0.0f64, 0.0f64);
    for d in Dataset::all() {
        let name = d.entry().name;
        let a = d.load::<f64>(32);
        let mut ctx = HeteroContext::scaled(d.effective_scale(32)).with_host_threads(threads);

        // correctness gate before timing: the batched executor must
        // reproduce the per-claim run exactly
        let want = hh_cpu(&mut ctx, &a, &a, &serial_cfg);
        let got = hh_cpu(&mut ctx, &a, &a, &batched_cfg);
        assert_eq!(got.c, want.c, "{name}: batched executor changed C");
        assert_eq!(
            got.profile, want.profile,
            "{name}: batched executor changed the simulated profile"
        );
        assert_eq!(
            got.tuples_merged, want.tuples_merged,
            "{name}: batched executor changed tuples_merged"
        );

        let (mut serial_ms, mut batched_ms) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(hh_cpu(&mut ctx, &a, &a, &serial_cfg));
            serial_ms = serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);

            let t0 = Instant::now();
            std::hint::black_box(hh_cpu(&mut ctx, &a, &a, &batched_cfg));
            batched_ms = batched_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!(
            "  {name:<14} serial {serial_ms:>8.2} ms | batched {batched_ms:>8.2} ms | {:.2}x",
            serial_ms / batched_ms
        );
        serial_total += serial_ms;
        batched_total += batched_ms;
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"exec_serial_ms\": {serial_ms:.4}, \
             \"exec_batched_ms\": {batched_ms:.4}, \"exec_speedup\": {:.4}}}",
            serial_ms / batched_ms
        ));
    }
    println!(
        "  exec total: serial {serial_total:.2} ms | batched {batched_total:.2} ms | {:.2}x \
         (speedup needs a multi-core runner)",
        serial_total / batched_total
    );

    format!(
        "  \"exec_host_threads\": {threads},\n  \
         \"exec_serial_ms\": {serial_total:.4},\n  \
         \"exec_batched_ms\": {batched_total:.4},\n  \
         \"exec_speedup\": {:.4},\n  \
         \"exec_matrices\": [\n{}\n  ]",
        serial_total / batched_total,
        rows.join(",\n"),
    )
}

/// Time end-to-end `hh_cpu` with the fixed dense-SPA accumulator vs the
/// adaptive row-binned engine on every Table I clone, and fail hard if the
/// adaptive product or its simulated profile deviates by a single bit.
/// Returns the JSON fragment for the CI artifact.
fn spa_perf() -> String {
    let threads = 8;
    let reps = 3;
    let fixed_cfg = HhCpuConfig {
        accum: AccumStrategy::FixedSpa,
        ..HhCpuConfig::default()
    };
    let adaptive_cfg = HhCpuConfig::default();

    println!("\nspa-perf: hh_cpu end to end, fixed SPA vs adaptive row-binned accumulators ({threads} host threads, best of {reps}):");
    let mut rows = Vec::new();
    let (mut fixed_total, mut adaptive_total) = (0.0f64, 0.0f64);
    for d in Dataset::all() {
        let name = d.entry().name;
        let a = d.load::<f64>(32);
        let mut ctx = HeteroContext::scaled(d.effective_scale(32)).with_host_threads(threads);

        // correctness gate before timing: the adaptive engine must
        // reproduce the fixed-SPA run exactly
        let want = hh_cpu(&mut ctx, &a, &a, &fixed_cfg);
        let got = hh_cpu(&mut ctx, &a, &a, &adaptive_cfg);
        assert_eq!(got.c, want.c, "{name}: adaptive engine changed C");
        assert_eq!(
            got.profile, want.profile,
            "{name}: adaptive engine changed the simulated profile"
        );
        assert_eq!(
            (got.threshold_a, got.threshold_b),
            (want.threshold_a, want.threshold_b),
            "{name}: adaptive engine changed the thresholds"
        );
        assert_eq!(
            got.tuples_merged, want.tuples_merged,
            "{name}: adaptive engine changed tuples_merged"
        );

        let (mut fixed_ms, mut adaptive_ms) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t0 = Instant::now();
            std::hint::black_box(hh_cpu(&mut ctx, &a, &a, &fixed_cfg));
            fixed_ms = fixed_ms.min(t0.elapsed().as_secs_f64() * 1e3);

            // per-bin tallies collected only around the timed adaptive
            // runs, so the spa_bin_* keys describe exactly what was timed
            bin_stats::enable(true);
            let t0 = Instant::now();
            std::hint::black_box(hh_cpu(&mut ctx, &a, &a, &adaptive_cfg));
            adaptive_ms = adaptive_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            bin_stats::enable(false);
        }
        println!(
            "  {name:<14} fixed {fixed_ms:>8.2} ms | adaptive {adaptive_ms:>8.2} ms | {:.2}x",
            fixed_ms / adaptive_ms
        );
        fixed_total += fixed_ms;
        adaptive_total += adaptive_ms;
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"spa_fixed_ms\": {fixed_ms:.4}, \
             \"spa_adaptive_ms\": {adaptive_ms:.4}, \"spa_speedup\": {:.4}}}",
            fixed_ms / adaptive_ms
        ));
    }
    println!(
        "  spa total: fixed {fixed_total:.2} ms | adaptive {adaptive_total:.2} ms | {:.2}x",
        fixed_total / adaptive_total
    );

    // Per-bin tallies from the timed adaptive runs, aggregated over every
    // clone and rep: how many rows each accumulator shape handled, how many
    // output entries it drained, and its drain throughput. This is the
    // data the bin thresholds (`TINY_PRODUCT_FLOPS`, `BinThresholds`) are
    // tuned from.
    let snap = bin_stats::take();
    let mut bin_keys = Vec::new();
    println!("  per-bin (timed adaptive runs, all clones):");
    for (i, bname) in bin_stats::BIN_NAMES.iter().enumerate() {
        let ms = snap.ns[i] as f64 / 1e6;
        let mps = if snap.ns[i] > 0 {
            snap.entries[i] as f64 * 1e3 / snap.ns[i] as f64
        } else {
            0.0
        };
        println!(
            "    {bname:<6} {:>9} rows | {:>10} entries | {ms:>9.2} ms | {mps:>8.2} Mentry/s",
            snap.rows[i], snap.entries[i],
        );
        bin_keys.push(format!(
            "  \"spa_bin_{bname}_rows\": {},\n  \
             \"spa_bin_{bname}_entries\": {},\n  \
             \"spa_bin_{bname}_ms\": {ms:.4},\n  \
             \"spa_bin_{bname}_mentries_per_s\": {mps:.4}",
            snap.rows[i], snap.entries[i],
        ));
    }

    format!(
        "  \"spa_host_threads\": {threads},\n  \
         \"spa_fixed_ms\": {fixed_total:.4},\n  \
         \"spa_adaptive_ms\": {adaptive_total:.4},\n  \
         \"spa_speedup\": {:.4},\n  \
         \"spa_matrices\": [\n{}\n  ],\n{}",
        fixed_total / adaptive_total,
        rows.join(",\n"),
        bin_keys.join(",\n"),
    )
}

/// Normalize a catalog name into a flat JSON key fragment.
fn slug(name: &str) -> String {
    name.to_lowercase().replace('-', "_")
}

/// Process CPU time (utime + stime, all threads) in clock ticks, read
/// from `/proc/self/stat`. `None` where procfs is unavailable — the
/// probes then fall back to wall-clock minima.
fn cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // fields 14/15 (1-based) follow the parenthesised comm field
    let rest = stat.rsplit(')').next()?;
    let f: Vec<&str> = rest.split_whitespace().collect();
    Some(f.get(11)?.parse::<u64>().ok()? + f.get(12)?.parse::<u64>().ok()?)
}

/// Gate, then time, the fused single-pass tier against the retained
/// two-pass oracle on every Table I clone.
///
/// The hard gate runs cold `hh_cpu` at the scale-32 clones with 8 host
/// threads and fails if the fused product, its simulated profile, the
/// thresholds, or the merge count deviate by a single bit before
/// anything is timed. The timed portion measures what the engine change
/// actually targets — the numeric work — on the warm serve path
/// (`SpmmArtifacts` built once and reused, the registry's steady state)
/// at the 4× larger scale-8 clones with one host thread, the same
/// single-core rationale as `simd_perf`. Process CPU time accumulated
/// over interleaved off/on reps is the primary metric: unlike per-side
/// wall minima it is immune to the preemption a shared CI core suffers
/// and does not let each side cherry-pick its luckiest moment. Wall
/// minima remain in the JSON as the ms fields and the fallback where
/// procfs is absent. Returns the JSON fragment (flat per-matrix
/// `fused_speedup_<name>` keys so floors can pin each clone).
fn fused_perf() -> String {
    let gate_threads = 8;
    let reps = 5;
    let config = HhCpuConfig::default();

    println!("\nfused-perf: two-pass oracle vs fused single-pass tier (gate: scale 32, {gate_threads} threads; timed: warm artifacts, scale 8, 1 thread, {reps} interleaved reps):");
    let mut rows = Vec::new();
    let mut flat = Vec::new();
    let (mut twopass_total, mut fused_total) = (0.0f64, 0.0f64);
    for d in Dataset::all() {
        let name = d.entry().name;

        // the hard gate: the fused tier must reproduce the two-pass run
        // exactly — output, simulated profile, thresholds, merge count —
        // before either variant is timed
        {
            let a = d.load::<f64>(32);
            let mut ctx =
                HeteroContext::scaled(d.effective_scale(32)).with_host_threads(gate_threads);
            fused::set_forced(Some(false));
            let want = hh_cpu(&mut ctx, &a, &a, &config);
            fused::set_forced(Some(true));
            let got = hh_cpu(&mut ctx, &a, &a, &config);
            assert_eq!(got.c, want.c, "{name}: fused tier changed C");
            assert_eq!(
                got.profile, want.profile,
                "{name}: fused tier changed the simulated profile"
            );
            assert_eq!(
                (got.threshold_a, got.threshold_b),
                (want.threshold_a, want.threshold_b),
                "{name}: fused tier changed the thresholds"
            );
            assert_eq!(
                got.tuples_merged, want.tuples_merged,
                "{name}: fused tier changed tuples_merged"
            );
        }

        let a = d.load::<f64>(8);
        let mut ctx = HeteroContext::scaled(d.effective_scale(8)).with_host_threads(1);
        let artifacts = SpmmArtifacts::build(&ctx, &a, &a, config.policy);
        // warm both sides once untimed, and gate the timed path too
        fused::set_forced(Some(false));
        let want = hh_cpu_with_artifacts(&mut ctx, &a, &a, &config, &artifacts);
        fused::set_forced(Some(true));
        let got = hh_cpu_with_artifacts(&mut ctx, &a, &a, &config, &artifacts);
        assert_eq!(
            got.c, want.c,
            "{name}: fused tier changed warm C at scale 8"
        );

        let mut wall = [f64::INFINITY; 2];
        let mut cpu = [0u64; 2];
        for _ in 0..reps {
            for (side, on) in [(0usize, false), (1, true)] {
                fused::set_forced(Some(on));
                let c0 = cpu_ticks();
                let t0 = Instant::now();
                std::hint::black_box(hh_cpu_with_artifacts(&mut ctx, &a, &a, &config, &artifacts));
                wall[side] = wall[side].min(t0.elapsed().as_secs_f64() * 1e3);
                if let (Some(c0), Some(c1)) = (c0, cpu_ticks()) {
                    cpu[side] += c1 - c0;
                }
            }
        }
        // tick totals too small to resolve (tiny clones) fall back to wall
        let speedup = if cpu[0] >= 10 && cpu[1] >= 10 {
            cpu[0] as f64 / cpu[1] as f64
        } else {
            wall[0] / wall[1]
        };
        println!(
            "  {name:<14} two-pass {:>8.2} ms | fused {:>8.2} ms | cpu {:>4}:{:<4} ticks | {speedup:.2}x",
            wall[0], wall[1], cpu[0], cpu[1]
        );
        twopass_total += wall[0];
        fused_total += wall[1];
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"fused_off_ms\": {:.4}, \
             \"fused_on_ms\": {:.4}, \"fused_speedup\": {speedup:.4}}}",
            wall[0], wall[1],
        ));
        flat.push(format!("  \"fused_speedup_{}\": {speedup:.4}", slug(name)));
    }
    fused::set_forced(None);
    println!(
        "  fused total: two-pass {twopass_total:.2} ms | fused {fused_total:.2} ms | {:.2}x",
        twopass_total / fused_total
    );

    format!(
        "  \"fused_gate_threads\": {gate_threads},\n  \
         \"fused_off_ms\": {twopass_total:.4},\n  \
         \"fused_on_ms\": {fused_total:.4},\n  \
         \"fused_speedup\": {:.4},\n  \
         \"fused_matrices\": [\n{}\n  ],\n{}",
        twopass_total / fused_total,
        rows.join(",\n"),
        flat.join(",\n"),
    )
}

/// Time the host numeric engine — symbolic + binned numeric + concat, the
/// loops PR 7 vectorized — with SIMD dispatch forced to the scalar oracle
/// vs the auto-detected level, on every Table I clone. Hard-fails if the
/// two levels differ by a single output bit. Returns the JSON fragment
/// (flat per-matrix `simd_speedup_<name>` keys so floors can pin each
/// clone) for the CI artifact.
fn simd_perf() -> String {
    let reps = 3;
    // one host thread on purpose: the probe measures the kernels' scalar
    // vs vector dispatch, and thread-scope spawns on a shared CI core add
    // noise an order of magnitude above the effect being measured
    let pool = ThreadPool::new(1);

    simd::set_forced(None);
    let auto = simd::level();
    println!(
        "\nsimd-perf: numeric engine, scalar oracle vs dispatched ({auto:?}) on every clone (best of {reps}):"
    );
    let mut rows = Vec::new();
    let mut flat = Vec::new();
    let (mut scalar_total, mut vector_total) = (0.0f64, 0.0f64);
    for d in Dataset::all() {
        let name = d.entry().name;
        let a = d.load::<f64>(32);
        let all_rows: Vec<usize> = (0..a.nrows()).collect();
        let shape = (a.nrows(), a.ncols());

        // the hard gate: forced-scalar and dispatched runs must agree on
        // every bit of the product before either is timed
        simd::set_forced(Some(SimdLevel::Scalar));
        let want = {
            let block = row_products(&a, &a, &all_rows, None, &pool);
            concat_row_blocks(&[block], shape, &pool)
        };
        simd::set_forced(None);
        let got = {
            let block = row_products(&a, &a, &all_rows, None, &pool);
            concat_row_blocks(&[block], shape, &pool)
        };
        assert_eq!(got, want, "{name}: SIMD dispatch changed the product");

        let (mut scalar_ms, mut vector_ms) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            simd::set_forced(Some(SimdLevel::Scalar));
            let t0 = Instant::now();
            let block = row_products(&a, &a, &all_rows, None, &pool);
            std::hint::black_box(concat_row_blocks(&[block], shape, &pool));
            scalar_ms = scalar_ms.min(t0.elapsed().as_secs_f64() * 1e3);

            simd::set_forced(None);
            let t0 = Instant::now();
            let block = row_products(&a, &a, &all_rows, None, &pool);
            std::hint::black_box(concat_row_blocks(&[block], shape, &pool));
            vector_ms = vector_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        let speedup = scalar_ms / vector_ms;
        println!(
            "  {name:<14} scalar {scalar_ms:>8.2} ms | simd {vector_ms:>8.2} ms | {speedup:.2}x"
        );
        scalar_total += scalar_ms;
        vector_total += vector_ms;
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"simd_scalar_ms\": {scalar_ms:.4}, \
             \"simd_vector_ms\": {vector_ms:.4}, \"simd_speedup\": {speedup:.4}}}",
        ));
        flat.push(format!("  \"simd_speedup_{}\": {speedup:.4}", slug(name)));
    }
    simd::set_forced(None);
    println!(
        "  simd total: scalar {scalar_total:.2} ms | simd {vector_total:.2} ms | {:.2}x",
        scalar_total / vector_total
    );

    format!(
        "  \"simd_level\": \"{auto:?}\",\n  \
         \"simd_scalar_ms\": {scalar_total:.4},\n  \
         \"simd_vector_ms\": {vector_total:.4},\n  \
         \"simd_speedup\": {:.4},\n  \
         \"simd_matrices\": [\n{}\n  ],\n{}",
        scalar_total / vector_total,
        rows.join(",\n"),
        flat.join(",\n"),
    )
}

/// Time the register-tiled csrmm sweep against the naive reference triple
/// loop, hard-failing on any bit drift, and check the opt-in tree-reduced
/// kernel against its tolerance. Returns the JSON fragment for the CI
/// artifact.
fn csrmm_perf() -> String {
    let reps = 3;
    let a = scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(4_000, 40_000, 2.1, 9));
    let k = 32;
    let data: Vec<f64> = (0..a.ncols() * k)
        .map(|i| ((i * 13) % 37) as f64 * 0.125 - 2.0)
        .collect();
    let b = DenseMatrix::from_row_major(a.ncols(), k, data);

    // gates first: tiled must match the naive reference bit for bit, the
    // tree-reduced opt-in only to a tolerance
    let naive = reference::csrmm(&a, &b).unwrap();
    let mut ctx = HeteroContext::paper();
    let tiled = cpu_csrmm(&mut ctx, &a, &b).c;
    assert!(
        naive
            .data()
            .iter()
            .zip(tiled.data())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "tiled csrmm drifted from the reference bits"
    );
    let tree = hh_csrmm_with_kernel(
        &mut ctx,
        &a,
        &b,
        ThresholdPolicy::Fixed { t_a: 8, t_b: 8 },
        CsrmmKernel::TreeReduced,
    )
    .c;
    assert!(
        tree.approx_eq(&naive, 1e-9, 1e-12),
        "tree-reduced csrmm outside tolerance"
    );

    let (mut naive_ms, mut tiled_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(reference::csrmm(&a, &b).unwrap());
        naive_ms = naive_ms.min(t0.elapsed().as_secs_f64() * 1e3);

        // raw kernel sweep — csrmm_compute, not cpu_csrmm, so the timing
        // excludes the simulated device cost model
        let t0 = Instant::now();
        std::hint::black_box(csrmm_compute(&a, &b, CsrmmKernel::Tiled));
        tiled_ms = tiled_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let speedup = naive_ms / tiled_ms;
    println!(
        "\ncsrmm-perf (n={}, nnz={}, k={k}, best of {reps}):\n\
         naive {naive_ms:.2} ms | tiled {tiled_ms:.2} ms | {speedup:.2}x",
        a.nrows(),
        a.nnz(),
    );

    format!(
        "  \"csrmm_k\": {k},\n  \
         \"csrmm_naive_ms\": {naive_ms:.4},\n  \
         \"csrmm_tiled_ms\": {tiled_ms:.4},\n  \
         \"csrmm_speedup\": {speedup:.4}"
    )
}

/// Time the sharded row-band driver on the scircuit clone: the monolithic
/// engine vs an 8-way pooled shard fan-out vs out-of-core shards under a
/// byte cap that forces disk spills — both the default pipelined
/// overlap driver and the forced-synchronous fallback
/// (`SPMM_SHARD_IO_THREADS=0` semantics). Hard-fails unless every
/// sharded product — both modes, both I/O paths, and every replication
/// factor — is bit-identical to the monolithic run *before* anything is
/// timed, and unless the pipelined run's peak resident bytes stay under
/// `byte_cap` + one band working set (DESIGN.md §3.9). Then
/// sweeps the simulated 1.5D replication factor c ∈ {1, 2, 4} and fails
/// unless total simulated link bytes fall monotonically as resident B
/// replicas absorb the broadcast traffic (the paper-style
/// communication/memory trade). Returns the JSON fragment for the CI
/// artifact.
fn shard_perf() -> String {
    // min-of-7: the mono-vs-pipelined ratio gates a 0.95 floor, so the
    // estimate needs more samples than the other probes to shake off
    // shared-runner jitter
    let reps = 7;
    let shards = 8;
    let d = Dataset::by_name("scircuit").unwrap();
    let a = d.load::<f64>(32);
    let config = HhCpuConfig::default();
    let mut ctx = HeteroContext::scaled(d.effective_scale(32)).with_host_threads(8);

    let mono = hh_cpu(&mut ctx, &a, &a, &config);
    // half the product's bytes: some shards must take the disk round-trip
    let cap = mono.c.byte_size() / 2;
    let pooled_cfg = ShardConfig::pooled(shards);
    let ooc_cfg = ShardConfig::out_of_core(shards, cap);

    // the hard gate: both execution modes must reproduce the monolithic
    // product to the bit, and the byte cap must actually spill
    let pooled = hh_cpu_sharded(&mut ctx, &a, &a, &config, &pooled_cfg);
    assert_eq!(pooled.output.c, mono.c, "pooled shards changed C");
    assert_eq!(
        pooled.output.tuples_merged, mono.tuples_merged,
        "pooled shards changed tuples_merged"
    );
    io_mode::set_forced(Some(true));
    let ooc = hh_cpu_sharded(&mut ctx, &a, &a, &config, &ooc_cfg);
    assert_eq!(ooc.output.c, mono.c, "out-of-core shards changed C");
    let spilled = ooc.spilled_shards;
    assert!(spilled >= 1, "a cap of bytes(C)/2 never spilled");

    // the pipelined driver's residency contract: one band's A slice + C
    // band may ride over the cap while in flight, never more
    let pipe = ooc.pipe.as_ref().expect("pipelined run reports stats");
    let band_working_set = (0..ooc.plan.shards())
        .map(|i| {
            a.row_band_byte_size(ooc.plan.band(i)) + mono.c.row_band_byte_size(ooc.plan.band(i))
        })
        .max()
        .unwrap();
    assert!(
        pipe.peak_resident_bytes <= cap.saturating_add(band_working_set),
        "pipelined peak resident {} exceeds cap {cap} + band {band_working_set}",
        pipe.peak_resident_bytes
    );

    // the synchronous fallback (`SPMM_SHARD_IO_THREADS=0`) must produce
    // the same bits through the same byte cap
    io_mode::set_forced(Some(false));
    let ooc_sync = hh_cpu_sharded(&mut ctx, &a, &a, &config, &ooc_cfg);
    assert_eq!(ooc_sync.output.c, mono.c, "sync out-of-core changed C");
    assert_eq!(
        ooc_sync.output.profile, ooc.output.profile,
        "sync and pipelined profiles drifted"
    );
    assert!(ooc_sync.pipe.is_none(), "sync fallback reported pipe stats");

    let (mut mono_ms, mut pooled_ms, mut ooc_ms) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut sync_ms = f64::INFINITY;
    let mut best_pipe = *pipe;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(hh_cpu(&mut ctx, &a, &a, &config));
        mono_ms = mono_ms.min(t0.elapsed().as_secs_f64() * 1e3);

        let t0 = Instant::now();
        std::hint::black_box(hh_cpu_sharded(&mut ctx, &a, &a, &config, &pooled_cfg));
        pooled_ms = pooled_ms.min(t0.elapsed().as_secs_f64() * 1e3);

        io_mode::set_forced(Some(true));
        let t0 = Instant::now();
        let run = hh_cpu_sharded(&mut ctx, &a, &a, &config, &ooc_cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if ms < ooc_ms {
            ooc_ms = ms;
            best_pipe = run.pipe.expect("pipelined run reports stats");
        }
        std::hint::black_box(run);

        io_mode::set_forced(Some(false));
        let t0 = Instant::now();
        std::hint::black_box(hh_cpu_sharded(&mut ctx, &a, &a, &config, &ooc_cfg));
        sync_ms = sync_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    io_mode::set_forced(None);

    // replication sweep over the simulated 1.5D link: same plan and C,
    // only the communication schedule changes. c replicas of B cut the
    // broadcast term ⌈p/c⌉·bytes(B) while growing the reduce term and the
    // resident footprint — on this product bytes(C) ≪ p·bytes(B), so
    // total link bytes must fall monotonically in c.
    let cs = [1usize, 2, 4];
    let sweep: Vec<_> = cs
        .iter()
        .map(|&c| {
            let out = hh_cpu_sharded(&mut ctx, &a, &a, &config, &pooled_cfg.with_replication(c));
            assert_eq!(out.output.c, mono.c, "replication c={c} changed C");
            out.link
        })
        .collect();
    for (lo, hi) in sweep.iter().zip(&sweep[1..]) {
        let (a_c, b_c) = (lo.replication, hi.replication);
        assert!(
            hi.total_bytes() < lo.total_bytes(),
            "link bytes not monotone: c={b_c} moves {} >= c={a_c}'s {}",
            hi.total_bytes(),
            lo.total_bytes()
        );
        assert!(
            hi.b_shift_bytes < lo.b_shift_bytes,
            "replication c={b_c} did not shrink the B broadcast"
        );
        assert!(
            hi.resident_bytes > lo.resident_bytes,
            "replication c={b_c} did not grow the resident footprint"
        );
    }

    println!(
        "\nshard-perf (scircuit/32, {shards} nnz-balanced bands, best of {reps}):\n\
         monolithic {mono_ms:.2} ms | pooled {pooled_ms:.2} ms ({:.2}x) | \
         out-of-core piped {ooc_ms:.2} ms / sync {sync_ms:.2} ms ({spilled} spilled)\n\
         pipeline: {} workers | spill-thread idle {:.2} ms | admit wait {:.2} ms | \
         peak resident {:.2} MB (cap {:.2} MB + band {:.2} MB)",
        mono_ms / pooled_ms,
        best_pipe.workers,
        best_pipe.spill_wait_ns as f64 / 1e6,
        best_pipe.admit_wait_ns as f64 / 1e6,
        best_pipe.peak_resident_bytes as f64 / 1e6,
        cap as f64 / 1e6,
        band_working_set as f64 / 1e6,
    );
    for cost in &sweep {
        println!(
            "  c={} link: {:>7.2} MB total | B-shift {:>7.2} MB | reduce {:>6.2} MB | \
             resident {:>7.2} MB | {:>9.0} sim-us",
            cost.replication,
            cost.total_bytes() as f64 / 1e6,
            cost.b_shift_bytes as f64 / 1e6,
            cost.c_reduce_bytes as f64 / 1e6,
            cost.resident_bytes as f64 / 1e6,
            cost.transfer_ns / 1e3,
        );
    }

    let link_keys: Vec<String> = sweep
        .iter()
        .map(|cost| {
            format!(
                "  \"shard_link_total_mb_c{}\": {:.4},\n  \
                 \"shard_link_resident_mb_c{}\": {:.4},\n  \
                 \"shard_link_sim_us_c{}\": {:.4}",
                cost.replication,
                cost.total_bytes() as f64 / 1e6,
                cost.replication,
                cost.resident_bytes as f64 / 1e6,
                cost.replication,
                cost.transfer_ns / 1e3,
            )
        })
        .collect();
    format!(
        "  \"shard_shards\": {shards},\n  \
         \"shard_spilled\": {spilled},\n  \
         \"shard_mono_ms\": {mono_ms:.4},\n  \
         \"shard_pooled_ms\": {pooled_ms:.4},\n  \
         \"shard_ooc_ms\": {ooc_ms:.4},\n  \
         \"shard_pooled_speedup\": {:.4},\n  \
         \"shard_ooc_speedup\": {:.4},\n  \
         \"shard_pipe_sync_ms\": {sync_ms:.4},\n  \
         \"shard_pipe_spill_wait_ms\": {:.4},\n  \
         \"shard_pipe_peak_resident_mb\": {:.4},\n  \
         \"shard_pipe_budget_ok\": 1,\n  \
         \"shard_link_monotone\": 1,\n{}",
        ooc_ms / pooled_ms,
        mono_ms / ooc_ms,
        best_pipe.spill_wait_ns as f64 / 1e6,
        best_pipe.peak_resident_bytes as f64 / 1e6,
        link_keys.join(",\n"),
    )
}

/// Load the serve trace's operands into `service` (untimed setup) and
/// return the distinct products the trace multiplies.
fn serve_fixture(service: &SpmmService) -> Vec<MultiplyRequest> {
    for name in ["wiki-Vote", "email-Enron", "ca-CondMat", "scircuit"] {
        service.load_dataset(name, 32).expect("catalog dataset");
    }
    service.load_generated(Some("web-a"), 1_200, 6_000, 2.2, 21, 1);
    service.load_generated(Some("web-b"), 1_200, 7_200, 2.6, 22, 1);
    [
        ("wiki-Vote", "wiki-Vote"),
        ("email-Enron", "email-Enron"),
        ("ca-CondMat", "ca-CondMat"),
        ("scircuit", "scircuit"),
        ("web-a", "web-a"),
        ("web-a", "web-b"),
        ("web-b", "web-b"),
    ]
    .into_iter()
    .map(|(a, b)| MultiplyRequest::new(a, b))
    .collect()
}

/// Replay the serve-layer trace through `SpmmService` and time the same
/// multiplies cold (fresh service, artifact cache empty) vs warm (cache
/// hit on every product). Hard-fails on any warm-vs-cold bit drift —
/// every warm output is compared against the cold pass *and* against a
/// fresh single-shot `HeteroContext` run. Returns the JSON fragment for
/// the CI artifact.
fn serve_perf() -> String {
    // gate first: replay the committed trace with cold verification, then
    // a second pass that must be fully warm and bit-identical
    let trace = include_str!("../tests/golden/serve_trace.jsonl");
    let service = SpmmService::new(ServiceConfig::default());
    let options = ReplayOptions {
        verify_cold: true,
        wire_selftest: true,
    };
    let first = replay::replay_trace(&service, trace, &options).expect("trace replays");
    let second = replay::replay_trace(&service, trace, &options).expect("trace replays warm");
    assert!(
        first.drifts.is_empty(),
        "cold pass drift: {:?}",
        first.drifts
    );
    assert!(
        second.drifts.is_empty(),
        "warm pass drift: {:?}",
        second.drifts
    );
    assert_eq!(
        second.warm_artifact_hits, second.multiplies,
        "second replay pass must be fully warm"
    );
    for (a, b) in first.outputs.iter().zip(&second.outputs) {
        replay::diff_outputs(&a.reply.output, &b.reply.output)
            .expect("warm replay bit-identical to cold replay");
    }
    let requests = first.requests;

    // timing: the trace's distinct products, cold (best of fresh services)
    // vs warm (best of repeat passes on one service)
    let reps = 2;
    let mut cold_ms = f64::INFINITY;
    let mut service = SpmmService::new(ServiceConfig::default());
    for rep in 0..reps {
        let fresh = SpmmService::new(ServiceConfig::default());
        let products = serve_fixture(&fresh);
        let t0 = Instant::now();
        for req in &products {
            let reply = fresh.multiply(req).expect("cold multiply");
            assert!(!reply.warm, "cold pass unexpectedly hit the artifact cache");
            std::hint::black_box(reply);
        }
        cold_ms = cold_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        if rep == reps - 1 {
            service = fresh;
        }
    }
    let products = serve_fixture(&service);
    let mut warm_ms = f64::INFINITY;
    for _ in 0..reps + 1 {
        let t0 = Instant::now();
        for req in &products {
            let reply = service.multiply(req).expect("warm multiply");
            assert!(reply.warm, "warm pass missed the artifact cache");
            std::hint::black_box(reply);
        }
        warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    let multiplies = products.len();
    let speedup = cold_ms / warm_ms;
    let cold_rps = multiplies as f64 / (cold_ms / 1e3);
    let warm_rps = multiplies as f64 / (warm_ms / 1e3);
    println!(
        "\nserve-perf ({requests}-request trace, {multiplies} distinct products, best of {reps}):\n\
         cold {cold_ms:.2} ms ({cold_rps:.1} req/s) | warm {warm_ms:.2} ms ({warm_rps:.1} req/s) | {speedup:.2}x"
    );

    format!(
        "  \"serve_requests\": {requests},\n  \
         \"serve_multiplies\": {multiplies},\n  \
         \"serve_cold_ms\": {cold_ms:.4},\n  \
         \"serve_warm_ms\": {warm_ms:.4},\n  \
         \"serve_cold_rps\": {cold_rps:.4},\n  \
         \"serve_warm_rps\": {warm_rps:.4},\n  \
         \"serve_warm_speedup\": {speedup:.4}"
    )
}
