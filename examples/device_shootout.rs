//! Device shootout: make the paper's architecture-awareness argument
//! visible. Runs the *same* work — dense×dense vs sparse×sparse partial
//! products — through both device models and prints per-flop costs,
//! showing why `A_H × B_H` belongs on the CPU and `A_L × B_L` on the GPU
//! (§V-C: "the CPU is more appropriate for multiplying dense matrices
//! where it can use techniques such as cache-blocking, and the GPU is more
//! appropriate for multiplying rows with small density").
//!
//! ```text
//! cargo run --release --example device_shootout
//! ```

use hetero_spmm::hetsim::{CpuDevice, GpuDevice};
use hetero_spmm::prelude::*;

fn run(name: &str, a: &CsrMatrix<f64>, cpu: &mut CpuDevice, gpu: &mut GpuDevice) {
    cpu.reset();
    gpu.reset();
    let rows: Vec<usize> = (0..a.nrows()).collect();
    let flops = reference::flops(a, a) as f64;
    let cpu_ns = cpu.spmm_cost(a, a, rows.iter().copied(), None);
    let gpu_ns = gpu.spmm_cost(a, a, rows.iter().copied(), None);
    let winner = if cpu_ns < gpu_ns { "CPU" } else { "GPU" };
    println!(
        "{name:<28} {:>8.0}k flops | CPU {:>7.3} ns/flop | GPU {:>7.3} ns/flop | {winner} wins {:.2}x",
        flops / 1e3,
        cpu_ns / flops,
        gpu_ns / flops,
        (cpu_ns / gpu_ns).max(gpu_ns / cpu_ns)
    );
}

fn main() {
    let platform = Platform::paper();
    let mut cpu = CpuDevice::new(platform.cpu);
    let mut gpu = GpuDevice::new(platform.gpu);
    println!(
        "platform: {} CPU cores + {} GPU SMX ({}-wide warps)\n",
        platform.cpu.cores, platform.gpu.sms, platform.gpu.warp_width
    );

    // Dense × dense: few rows, many nonzeros each — the A_H × B_H shape.
    let dense = scale_free_matrix::<f64>(&GeneratorConfig {
        nrows: 512,
        ncols: 512,
        target_nnz: 512 * 200,
        distribution: RowSizeDistribution::NearUniform { spread: 20 },
        seed: 1,
    });
    run("dense x dense (A_H·B_H)", &dense, &mut cpu, &mut gpu);

    // Sparse × sparse: many rows, 2–3 nonzeros each — the A_L × B_L shape.
    let sparse = scale_free_matrix::<f64>(&GeneratorConfig {
        nrows: 60_000,
        ncols: 60_000,
        target_nnz: 60_000 * 2,
        distribution: RowSizeDistribution::NearUniform { spread: 1 },
        seed: 2,
    });
    run("sparse x sparse (A_L·B_L)", &sparse, &mut cpu, &mut gpu);

    // Mixed scale-free: what each device sees without the HH-CPU split.
    let mixed = scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(
        30_000, 150_000, 2.1, 3,
    ));
    run("mixed scale-free (no split)", &mixed, &mut cpu, &mut gpu);

    println!(
        "\nthe split exists because each device is fastest on a different shape —\n\
         assigning the \"right\" work to the \"right\" processor is the paper's thesis."
    );
}
