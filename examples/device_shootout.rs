//! Device shootout: make the paper's architecture-awareness argument
//! visible. Runs the *same* work — dense×dense vs sparse×sparse partial
//! products — through both device models and prints per-flop costs,
//! showing why `A_H × B_H` belongs on the CPU and `A_L × B_L` on the GPU
//! (§V-C: "the CPU is more appropriate for multiplying dense matrices
//! where it can use techniques such as cache-blocking, and the GPU is more
//! appropriate for multiplying rows with small density").
//!
//! ```text
//! cargo run --release --example device_shootout
//! ```
//!
//! Doubles as the CI smoke-perf probe: after the per-flop table it times
//! the host-side two-pass Gustavson engine against the legacy
//! tuple-sort path on a small synthetic matrix and writes the wall-clock
//! numbers to `BENCH_pr.json` (override the path with `BENCH_JSON`).

use std::time::Instant;

use hetero_spmm::core::kernels::{product_tuples, row_products};
use hetero_spmm::core::merge::{concat_row_blocks, merge_tuples};
use hetero_spmm::hetsim::{CpuDevice, GpuDevice};
use hetero_spmm::parallel::ThreadPool;
use hetero_spmm::prelude::*;

fn run(name: &str, a: &CsrMatrix<f64>, cpu: &mut CpuDevice, gpu: &mut GpuDevice) {
    cpu.reset();
    gpu.reset();
    let rows: Vec<usize> = (0..a.nrows()).collect();
    let flops = reference::flops(a, a) as f64;
    let cpu_ns = cpu.spmm_cost(a, a, rows.iter().copied(), None);
    let gpu_ns = gpu.spmm_cost(a, a, rows.iter().copied(), None);
    let winner = if cpu_ns < gpu_ns { "CPU" } else { "GPU" };
    println!(
        "{name:<28} {:>8.0}k flops | CPU {:>7.3} ns/flop | GPU {:>7.3} ns/flop | {winner} wins {:.2}x",
        flops / 1e3,
        cpu_ns / flops,
        gpu_ns / flops,
        (cpu_ns / gpu_ns).max(gpu_ns / cpu_ns)
    );
}

fn main() {
    let platform = Platform::paper();
    let mut cpu = CpuDevice::new(platform.cpu);
    let mut gpu = GpuDevice::new(platform.gpu);
    println!(
        "platform: {} CPU cores + {} GPU SMX ({}-wide warps)\n",
        platform.cpu.cores, platform.gpu.sms, platform.gpu.warp_width
    );

    // Dense × dense: few rows, many nonzeros each — the A_H × B_H shape.
    let dense = scale_free_matrix::<f64>(&GeneratorConfig {
        nrows: 512,
        ncols: 512,
        target_nnz: 512 * 200,
        distribution: RowSizeDistribution::NearUniform { spread: 20 },
        seed: 1,
    });
    run("dense x dense (A_H·B_H)", &dense, &mut cpu, &mut gpu);

    // Sparse × sparse: many rows, 2–3 nonzeros each — the A_L × B_L shape.
    let sparse = scale_free_matrix::<f64>(&GeneratorConfig {
        nrows: 60_000,
        ncols: 60_000,
        target_nnz: 60_000 * 2,
        distribution: RowSizeDistribution::NearUniform { spread: 1 },
        seed: 2,
    });
    run("sparse x sparse (A_L·B_L)", &sparse, &mut cpu, &mut gpu);

    // Mixed scale-free: what each device sees without the HH-CPU split.
    let mixed =
        scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(30_000, 150_000, 2.1, 3));
    run("mixed scale-free (no split)", &mixed, &mut cpu, &mut gpu);

    println!(
        "\nthe split exists because each device is fastest on a different shape —\n\
         assigning the \"right\" work to the \"right\" processor is the paper's thesis."
    );

    smoke_perf();
}

/// Time the two host numeric backends on one small scale-free product and
/// record the result for the CI artifact.
fn smoke_perf() {
    let a = scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(4_000, 40_000, 2.1, 7));
    let pool = ThreadPool::new(4);
    let rows: Vec<usize> = (0..a.nrows()).collect();
    let reps = 5;

    // warm-up + correctness cross-check before timing anything
    let via_engine = {
        let block = row_products(&a, &a, &rows, None, &pool);
        concat_row_blocks(&[block], (a.nrows(), a.ncols()), &pool)
    };
    let via_tuples = merge_tuples(
        product_tuples(&a, &a, &rows, None, &pool),
        (a.nrows(), a.ncols()),
        &pool,
    );
    assert!(
        via_engine.approx_eq(&via_tuples, 1e-9, 1e-12),
        "smoke-perf backends disagree"
    );

    let mut engine_ms = f64::INFINITY;
    let mut tuple_ms = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let block = row_products(&a, &a, &rows, None, &pool);
        let c = concat_row_blocks(&[block], (a.nrows(), a.ncols()), &pool);
        engine_ms = engine_ms.min(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(c);

        let t = Instant::now();
        let tuples = product_tuples(&a, &a, &rows, None, &pool);
        let c = merge_tuples(tuples, (a.nrows(), a.ncols()), &pool);
        tuple_ms = tuple_ms.min(t.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(c);
    }

    println!(
        "\nsmoke-perf (n={}, nnz={}, nnz(C)={}, best of {reps}):\n\
         two-pass engine {engine_ms:.2} ms | tuple sort {tuple_ms:.2} ms | ratio {:.2}x",
        a.nrows(),
        a.nnz(),
        via_engine.nnz(),
        tuple_ms / engine_ms,
    );

    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_pr.json".into());
    let json = format!(
        "{{\n  \"matrix\": {{\"nrows\": {}, \"nnz\": {}, \"output_nnz\": {}}},\n  \
         \"repetitions\": {reps},\n  \
         \"engine_ms\": {engine_ms:.4},\n  \
         \"tuple_path_ms\": {tuple_ms:.4},\n  \
         \"speedup\": {:.4}\n}}\n",
        a.nrows(),
        a.nnz(),
        via_engine.nnz(),
        tuple_ms / engine_ms,
    );
    std::fs::write(&path, json).expect("write smoke-perf artifact");
    println!("wrote {path}");
}
