//! Threshold tuning: reproduce the paper's Figure 8 experiment on one
//! matrix — sweep the Phase I density threshold and watch the convex
//! total-time curve, then compare the sweep's best against the built-in
//! empirical search.
//!
//! ```text
//! cargo run --release --example threshold_tuning [dataset-name]
//! ```

use hetero_spmm::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "email-Enron".into());
    let a = Dataset::by_name(&name)
        .unwrap_or_else(|| panic!("unknown dataset {name}; see Table I names"))
        .load::<f64>(16);
    println!(
        "{name}: {} rows, {} nnz, max row {}",
        a.nrows(),
        a.nnz(),
        a.max_row_nnz()
    );

    let mut ctx = HeteroContext::scaled(16);

    println!(
        "\n{:>8} {:>12} {:>12} {:>12} {:>9}",
        "t", "total ms", "II ms", "III ms", "HD rows"
    );
    let mut best = (f64::INFINITY, 0usize);
    let mut t = 2usize;
    let mut thresholds = vec![0usize];
    while t <= a.max_row_nnz() {
        thresholds.push(t);
        t *= 2;
    }
    thresholds.push(a.max_row_nnz() + 1);
    for t in thresholds {
        let out = hh_cpu(&mut ctx, &a, &a, &HhCpuConfig::with_threshold(t));
        let p = out.profile;
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>9}",
            t,
            p.total() / 1e6,
            p.phase2.wall() / 1e6,
            p.phase3.wall() / 1e6,
            out.hd_rows_a
        );
        if p.total() < best.0 {
            best = (p.total(), t);
        }
    }
    println!("\nsweep best: t = {} at {:.3} ms", best.1, best.0 / 1e6);

    // The built-in Phase I search should land near the sweep's optimum.
    let auto = hh_cpu(&mut ctx, &a, &a, &HhCpuConfig::default());
    println!(
        "empirical Phase I search chose t = {} at {:.3} ms ({:+.1}% vs sweep best)",
        auto.threshold_a,
        auto.total_ns() / 1e6,
        (auto.total_ns() / best.0 - 1.0) * 100.0
    );

    // Degenerate ends, as discussed in §V-B d: t = 0 is all-CPU (≈ MKL),
    // t > max is all-GPU.
    let mkl = mkl_like(&mut ctx, &a, &a);
    println!(
        "\ncontext: MKL-like CPU-only runs at {:.3} ms; the t = 0 end of the sweep \
         should sit near it",
        mkl.total_ns() / 1e6
    );
}
