//! Web-graph analytics: two-hop reachability counts via spmm.
//!
//! The paper motivates spmm with graph applications; squaring a web graph's
//! Boolean adjacency matrix yields, at entry (i, j), the number of length-2
//! paths from page i to page j — the core of link-spam detection and
//! related-page suggestions. This example builds a webbase-like graph,
//! squares it with HH-CPU, and reports the hub structure of the two-hop
//! neighbourhoods.
//!
//! ```text
//! cargo run --release --example webgraph_two_hop
//! ```

use hetero_spmm::prelude::*;

fn main() {
    // The webbase-1M clone from the Table I catalog, shrunk 32x so the
    // example runs in seconds.
    let graph = Dataset::by_name("webbase-1M")
        .expect("catalog entry exists")
        .load::<f64>(32);
    println!(
        "web graph: {} pages, {} links, power-law α ≈ {:.2}",
        graph.nrows(),
        graph.nnz(),
        fit_power_law(&graph.row_sizes())
            .map(|f| f.alpha)
            .unwrap_or(f64::NAN)
    );

    let mut ctx = HeteroContext::paper();
    let out = hh_cpu(&mut ctx, &graph, &graph, &HhCpuConfig::default());
    let two_hop = &out.c;
    println!(
        "two-hop matrix: {} pairs reachable in exactly 2 clicks (density {:.4}%)",
        two_hop.nnz(),
        two_hop.nnz() as f64 / (two_hop.nrows() as f64 * two_hop.ncols() as f64) * 100.0
    );
    println!(
        "simulated heterogeneous time: {:.3} ms",
        out.total_ns() / 1e6
    );

    // Hubs: pages that reach the most others in two clicks.
    let mut reach: Vec<(usize, usize)> = (0..two_hop.nrows())
        .map(|i| (two_hop.row_nnz(i), i))
        .collect();
    reach.sort_unstable_by(|a, b| b.cmp(a));
    println!("\ntop two-hop hubs (page, reachable pages, out-links):");
    for &(nbrs, page) in reach.iter().take(5) {
        println!(
            "  page {page:>7}: {nbrs:>7} two-hop neighbours, {} direct links",
            graph.row_nnz(page)
        );
    }

    // Strongest two-hop connection (most parallel length-2 paths, using
    // link multiplicity as weight).
    let (mut best, mut arg) = (0.0f64, (0usize, 0usize));
    for (r, c, v) in two_hop.iter() {
        if r != c && v > best {
            best = v;
            arg = (r, c);
        }
    }
    println!(
        "\nstrongest two-hop connection: page {} → page {} (path weight {best:.2})",
        arg.0, arg.1
    );

    // The scale-free structure is what HH-CPU exploits: show the split.
    println!(
        "\nHH-CPU routed {} dense rows (≥ {} links) to the CPU and {} sparse rows to the GPU",
        out.hd_rows_a,
        out.threshold_a,
        graph.nrows() - out.hd_rows_a
    );
}
