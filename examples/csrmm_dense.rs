//! The paper's §VI extension: heterogeneous **csrmm** (sparse × dense).
//!
//! "Since B is dense, the work can be divided as multiplying the
//! high-density submatrix A_H of A with B on the CPU and the low-density
//! submatrix A_L of A with B on the GPU."
//!
//! Scenario: propagating a feature matrix over a scale-free graph (one
//! step of graph-neural-network style message passing), comparing the
//! heterogeneous split against CPU-only and GPU-only execution.
//!
//! ```text
//! cargo run --release --example csrmm_dense
//! ```

use hetero_spmm::core::csrmm;
use hetero_spmm::prelude::*;

fn main() {
    // scale-free adjacency (ca-CondMat-like collaboration graph)
    let graph = Dataset::by_name("ca-CondMat")
        .expect("catalog entry exists")
        .load::<f64>(4);
    // 64-dimensional node features
    let dims = 64;
    let features = DenseMatrix::from_row_major(
        graph.ncols(),
        dims,
        (0..graph.ncols() * dims)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            .collect(),
    );
    println!(
        "graph: {} nodes, {} edges; features: {} x {}",
        graph.nrows(),
        graph.nnz(),
        features.nrows(),
        features.ncols()
    );

    let mut ctx = HeteroContext::scaled(16);
    let hh = csrmm::hh_csrmm(&mut ctx, &graph, &features, ThresholdPolicy::default());
    let cpu = csrmm::cpu_csrmm(&mut ctx, &graph, &features);
    let gpu = csrmm::gpu_csrmm(&mut ctx, &graph, &features);

    println!("\npropagated features: {} x {}", hh.c.nrows(), hh.c.ncols());
    println!(
        "threshold t = {} → {} dense rows on CPU, {} sparse rows on GPU",
        hh.threshold,
        hh.hd_rows,
        graph.nrows() - hh.hd_rows
    );
    println!("\ncompute-phase walls (overlap excluded transfers):");
    println!(
        "  heterogeneous: {:>9.3} ms",
        hh.profile.phase2.wall() / 1e6
    );
    println!(
        "  CPU-only:      {:>9.3} ms",
        cpu.profile.phase2.wall() / 1e6
    );
    println!(
        "  GPU-only:      {:>9.3} ms",
        gpu.profile.phase2.wall() / 1e6
    );
    println!("\nend-to-end (with PCIe transfers):");
    println!("  heterogeneous: {:>9.3} ms", hh.total_ns() / 1e6);
    println!("  CPU-only:      {:>9.3} ms", cpu.total_ns() / 1e6);
    println!("  GPU-only:      {:>9.3} ms", gpu.total_ns() / 1e6);

    // correctness: all three agree with the serial reference
    let expected = reference::csrmm(&graph, &features).expect("compatible shapes");
    assert!(hh.c.approx_eq(&expected, 1e-9, 1e-12));
    assert!(cpu.c.approx_eq(&expected, 1e-9, 1e-12));
    assert!(gpu.c.approx_eq(&expected, 1e-9, 1e-12));
    println!("\nall three results verified against the serial reference ✓");
}
