//! Synthetic scale-freeness study: a miniature of the paper's Figure 10.
//!
//! Generates matrix pairs with controlled power-law exponents, measures
//! the achieved α with the CSN/MLE fitter (as the paper does with the
//! `powerlaw` package), and shows HH-CPU's advantage over HiPC2012
//! shrinking as the input loses its scale-free character.
//!
//! ```text
//! cargo run --release --example synthetic_scalefree
//! ```

use hetero_spmm::prelude::*;

fn main() {
    let n = 20_000;
    let mean_row = 4;
    let mut ctx = HeteroContext::scaled(16);

    println!("n = {n} rows, ~{mean_row} nonzeros/row, A and B independent with the same α\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "α(gen)", "α(fit)", "HH-CPU ms", "HiPC ms", "speedup"
    );
    for k in 0..8 {
        let alpha = 3.0 + 0.5 * k as f64;
        let a = scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(
            n,
            n * mean_row,
            alpha,
            100 + k,
        ));
        let b = scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(
            n,
            n * mean_row,
            alpha,
            200 + k,
        ));
        let fit = fit_power_law(&a.row_sizes())
            .map(|f| f.alpha)
            .unwrap_or(f64::NAN);
        let hh = hh_cpu(&mut ctx, &a, &b, &HhCpuConfig::default());
        let hi = hipc2012(&mut ctx, &a, &b);
        println!(
            "{:>8.1} {:>10.2} {:>12.3} {:>12.3} {:>10.3}",
            alpha,
            fit,
            hh.total_ns() / 1e6,
            hi.total_ns() / 1e6,
            hh.speedup_over(&hi)
        );
    }

    // An R-MAT graph (the other GTgraph generator) for comparison: its
    // skewed quadrant probabilities also produce heavy-tailed rows.
    let g: CsrMatrix<f64> = rmat(14, 80_000, (0.57, 0.19, 0.19, 0.05), 7);
    let fit = fit_power_law(&g.row_sizes())
        .map(|f| f.alpha)
        .unwrap_or(f64::NAN);
    let hh = hh_cpu(&mut ctx, &g, &g, &HhCpuConfig::default());
    let hi = hipc2012(&mut ctx, &g, &g);
    println!(
        "\nR-MAT 2^14 ({} edges): fitted α = {fit:.2}, HH-CPU speedup over HiPC2012 = {:.3}",
        g.nnz(),
        hh.speedup_over(&hi)
    );
    println!("\npaper's Figure 10 shape: speedup decreases as α grows (less scale-free).");
}
