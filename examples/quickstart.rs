//! Quickstart: multiply a scale-free matrix with itself using Algorithm
//! HH-CPU and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetero_spmm::prelude::*;

fn main() {
    // The webbase-1M clone from the paper's Table I (the most scale-free
    // matrix in its dataset), shrunk 32x for a quick run.
    const SCALE: usize = 32;
    let a = Dataset::by_name("webbase-1M")
        .expect("catalog entry exists")
        .load::<f64>(SCALE);
    println!(
        "A: {} x {} with {} nonzeros (max row = {})",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.max_row_nnz()
    );

    // The simulated CPU+GPU platform from the paper's §II-B — Intel i7-980
    // (6 cores, 12 MB L3) + Tesla K20c (13 SMX) over PCIe 2.0 — rescaled to
    // match the shrunken input (`HeteroContext::paper()` is the full-size
    // platform).
    let mut ctx = HeteroContext::scaled(SCALE);

    // Run the paper's Algorithm HH-CPU end to end: threshold search,
    // overlapped phase II, workqueue-balanced phase III, tuple merge.
    let out = hh_cpu(&mut ctx, &a, &a, &HhCpuConfig::default());
    println!("\nC = A x A: {} nonzeros", out.c.nnz());
    println!(
        "chosen threshold t = {} ({} high-density rows)",
        out.threshold_a, out.hd_rows_a
    );
    println!("simulated wall time: {:.3} ms", out.total_ns() / 1e6);
    let w = out.profile.walls();
    println!(
        "phases (ms): I {:.3} | II {:.3} | III {:.3} | IV {:.3} | transfer {:.3}",
        w[0] / 1e6,
        w[1] / 1e6,
        w[2] / 1e6,
        w[3] / 1e6,
        out.profile.transfer_ns / 1e6
    );

    // Verify the numeric result against the serial Gustavson reference.
    let expected = reference::spmm_rowrow(&a, &a).expect("shapes are compatible");
    assert!(
        out.c.approx_eq(&expected, 1e-9, 1e-12),
        "HH-CPU result must match the serial reference"
    );
    println!("\nresult verified against the serial row-row reference ✓");

    // Compare with the best-known heterogeneous baseline ([13]).
    let baseline = hipc2012(&mut ctx, &a, &a);
    println!(
        "HiPC2012 baseline: {:.3} ms  →  HH-CPU speedup {:.2}x",
        baseline.total_ns() / 1e6,
        out.speedup_over(&baseline)
    );
}
