#!/usr/bin/env python3
"""Gate BENCH_pr.json against the committed perf floors.

Usage: check_bench_floors.py [BENCH_pr.json [tests/golden/bench_floors.json]]

Every non-underscore key in the floors file must be present in the bench
artifact and meet its floor. Exit 1 on any missing key or regression, so
the smoke-perf job fails instead of silently shipping a slowdown.
"""

import json
import sys


def main() -> int:
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr.json"
    floors_path = (
        sys.argv[2] if len(sys.argv) > 2 else "tests/golden/bench_floors.json"
    )
    with open(bench_path) as f:
        bench = json.load(f)
    with open(floors_path) as f:
        floors = json.load(f)

    failures = []
    for key, floor in sorted(floors.items()):
        if key.startswith("_"):
            continue
        value = bench.get(key)
        if not isinstance(value, (int, float)):
            failures.append(f"{key}: missing from {bench_path}")
            continue
        status = "ok" if value >= floor else "FAIL"
        print(f"{status:>4}  {key:<22} {value:>10.4f}  (floor {floor})")
        if value < floor:
            failures.append(f"{key}: {value:.4f} < floor {floor}")

    if failures:
        print(f"\n{len(failures)} floor violation(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall perf floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
