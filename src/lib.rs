//! # hetero-spmm
//!
//! A from-scratch Rust reproduction of **"A Novel Heterogeneous Algorithm
//! for Multiplying Scale-Free Sparse Matrices"** (Ramamoorthy, Banerjee,
//! Srinathan, Kothapalli; 2015): Algorithm **HH-CPU**, which multiplies two
//! scale-free sparse matrices on a CPU+GPU platform by routing high-density
//! rows to the CPU (cache blocking) and low-density rows to the GPU
//! (warp-per-row), balancing the mixed products through a double-ended
//! work queue.
//!
//! No GPU is required: the heterogeneous platform is a deterministic
//! simulator ([`hetsim`]) calibrated to the paper's i7-980 + Tesla K20c
//! testbed. Every kernel computes real numerics; only *durations* are
//! simulated. See `DESIGN.md` for the substitution rationale and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use hetero_spmm::prelude::*;
//!
//! // a scale-free matrix (power-law row sizes, like webbase-1M)
//! let a = scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(
//!     2_000, 10_000, 2.1, 42,
//! ));
//!
//! // multiply A × A with the paper's Algorithm HH-CPU on the simulated
//! // CPU+GPU platform
//! let mut ctx = HeteroContext::paper();
//! let out = hh_cpu(&mut ctx, &a, &a, &HhCpuConfig::default());
//!
//! println!("C has {} nonzeros", out.c.nnz());
//! println!("simulated time: {:.3} ms", out.total_ns() / 1e6);
//! println!("phase II+III share: {:.1}%", out.profile.compute_fraction() * 100.0);
//! # assert!(out.c.nnz() > 0);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sparse`] | `spmm-sparse` | CSR/CSC/COO, Matrix Market I/O, reference kernels |
//! | [`scalefree`] | `spmm-scalefree` | power-law generators & fitting, Table I catalog |
//! | [`cache`] | `spmm-cache` | set-associative cache hierarchy simulator |
//! | [`parallel`] | `spmm-parallel` | thread pool, parallel sort/scan |
//! | [`workqueue`] | `spmm-workqueue` | the paper's double-ended work queue |
//! | [`hetsim`] | `spmm-hetsim` | CPU/GPU/PCIe device models, phase profiles |
//! | [`core`] | `spmm-core` | Algorithm HH-CPU + every baseline of the evaluation |

pub mod serve;

pub use spmm_cache as cache;
pub use spmm_core as core;
pub use spmm_hetsim as hetsim;
pub use spmm_parallel as parallel;
pub use spmm_scalefree as scalefree;
pub use spmm_sparse as sparse;
pub use spmm_workqueue as workqueue;

/// One-stop imports for applications.
pub mod prelude {
    pub use spmm_core::{
        csrmm::{cpu_csrmm, csrmm_compute, gpu_csrmm, hh_csrmm, hh_csrmm_with_kernel, CsrmmKernel},
        cusparse_like, hh_cpu, hh_cpu_sharded, hipc2012, hipc2012_with, mkl_like, sorted_workqueue,
        sorted_workqueue_with, unsorted_workqueue, unsorted_workqueue_with, AccumStrategy,
        ExecConfig, ExecPolicy, HeteroContext, HhCpuConfig, PhaseBreakdown, Platform, ShardConfig,
        ShardMode, ShardPlan, ShardedOutput, SpmmOutput, ThresholdPolicy, WorkUnitConfig,
    };
    pub use spmm_scalefree::{
        fit_power_law, rmat, scale_free_matrix, Dataset, GeneratorConfig, PowerLawSampler,
        RowSizeDistribution, CATALOG,
    };
    pub use spmm_sparse::{
        reference, simd, CooMatrix, CscMatrix, CsrMatrix, DenseMatrix, RowHistogram, Scalar,
        SimdLevel,
    };
}
