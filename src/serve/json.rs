//! Minimal JSON value, parser, and writer for the serve wire protocol.
//!
//! The build is fully offline (no serde), so the service carries its own
//! ~300-line JSON layer. Scope is exactly what the protocol needs: the six
//! JSON types, string escapes (including `\uXXXX` with surrogate pairs),
//! and deterministic output (objects keep insertion order). Numbers are
//! `f64` — integral protocol fields stay exact below 2^53, and 64-bit
//! hashes travel as `"0x…"` strings instead.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as a non-negative integer (rejects fractions and negatives).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `get(key)` as a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: `get(key)` as a usize.
    pub fn usize_field(&self, key: &str) -> Option<usize> {
        self.get(key).and_then(Json::as_usize)
    }

    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialise to a compact JSON string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    // shortest round-trip float formatting (Rust default)
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: require a following \uXXXX low half
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // copy one UTF-8 sequence verbatim
                    let start = self.pos;
                    let len = match byte {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let digit = match byte {
                b'0'..=b'9' => byte - b'0',
                b'a'..=b'f' => byte - b'a' + 10,
                b'A'..=b'F' => byte - b'A' + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            code = code * 16 + digit as u32;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

/// Format a 64-bit hash the way the protocol ships it.
pub fn hex64(v: u64) -> String {
    format!("{v:#018x}")
}

/// Parse a `0x…` string produced by [`hex64`] (or any hex literal).
pub fn parse_hex64(s: &str) -> Option<u64> {
    let body = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))?;
    u64::from_str_radix(body, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"op":"multiply","a":"wiki-Vote","n":3,"ok":true,"xs":[1,2.5,-3e2],"nil":null,"s":"a\"b\\c\nd\u00e9\ud83d\ude00"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.str_field("op"), Some("multiply"));
        assert_eq!(v.usize_field("n"), Some(3));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("xs").unwrap().as_array().unwrap()[2],
            Json::Num(-300.0)
        );
        assert!(v.get("s").unwrap().as_str().unwrap().contains('é'));
        assert!(v.get("s").unwrap().as_str().unwrap().contains('😀'));
        // dump → parse is the identity
        assert_eq!(parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"\\q\"",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_dump_without_fraction() {
        assert_eq!(Json::from(42usize).dump(), "42");
        assert_eq!(Json::Num(2.5).dump(), "2.5");
        let big = Json::Num(9e15);
        assert_eq!(parse(&big.dump()).unwrap(), big);
    }

    #[test]
    fn hex64_round_trips() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(parse_hex64(&hex64(v)), Some(v));
        }
        assert_eq!(parse_hex64("nope"), None);
    }

    #[test]
    fn object_field_lookup_ignores_non_objects() {
        assert_eq!(Json::Num(1.0).get("x"), None);
        assert_eq!(
            Json::obj(vec![("x", Json::Null)]).get("x"),
            Some(&Json::Null)
        );
    }
}
