//! The shared matrix registry: loaded operands keyed by content hash.
//!
//! Every matrix entering the service is hashed over its exact stored bits
//! ([`CsrMatrix::content_hash`]); the hash is the identity. Loading the
//! same content twice — two sessions loading the same catalog clone, one
//! trace replayed twice — dedups to one `Arc`, which also means the
//! self-product fast paths in the engine (keyed on pointer identity) fire
//! for every `A = B` request, exactly as they do for a cold single-shot
//! run that passes the same reference twice.
//!
//! Entries carry serving metadata on top of the content: an optional
//! human alias (`"wiki-Vote"`), the load *spec* (dataset + scale, or
//! generator parameters) so a warm re-load can skip regeneration outright,
//! and the default platform scale multiplies should run at.
//!
//! Eviction is LRU under a byte cap. Evicting never invalidates in-flight
//! requests (they hold `Arc` clones); the service layer purges dependent
//! artifact-cache entries for every key the registry reports evicted.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use spmm_sparse::CsrMatrix;

/// Content hash identifying a registered matrix.
pub type MatrixKey = u64;

/// Counters exposed by [`MatrixRegistry::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    pub entries: usize,
    pub bytes: usize,
    pub hits: u64,
    pub misses: u64,
    pub dedup_hits: u64,
    pub spec_hits: u64,
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    matrix: Arc<CsrMatrix<f64>>,
    bytes: usize,
    last_used: u64,
    default_scale: usize,
    alias: Option<String>,
    spec: Option<String>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<MatrixKey, Entry>,
    aliases: HashMap<String, MatrixKey>,
    specs: HashMap<String, MatrixKey>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    dedup_hits: u64,
    spec_hits: u64,
    evictions: u64,
}

/// Outcome of one [`MatrixRegistry::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    pub key: MatrixKey,
    /// The content was already registered (the new copy was dropped).
    pub dedup: bool,
    /// Keys evicted to make room — the caller must purge dependent caches.
    pub evicted: Vec<MatrixKey>,
}

/// Thread-safe content-addressed matrix store with LRU eviction.
#[derive(Debug)]
pub struct MatrixRegistry {
    inner: Mutex<Inner>,
    cap_bytes: usize,
}

impl MatrixRegistry {
    /// Registry bounded to `cap_bytes` of matrix storage (`usize::MAX` for
    /// unbounded).
    pub fn new(cap_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cap_bytes,
        }
    }

    /// Register a matrix. Hashes the content; if it is already present the
    /// new copy is dropped (dedup) and metadata is refreshed. Evicts LRU
    /// entries if the cap is exceeded — the entry just inserted is never
    /// evicted, so a single oversized matrix still serves.
    pub fn insert(
        &self,
        matrix: CsrMatrix<f64>,
        alias: Option<&str>,
        spec: Option<&str>,
        default_scale: usize,
    ) -> InsertOutcome {
        let key = matrix.content_hash();
        let bytes = matrix.byte_size();
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let dedup = match inner.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                entry.default_scale = default_scale;
                if let Some(a) = alias {
                    entry.alias = Some(a.to_string());
                }
                if let Some(s) = spec {
                    entry.spec = Some(s.to_string());
                }
                inner.dedup_hits += 1;
                true
            }
            None => {
                inner.entries.insert(
                    key,
                    Entry {
                        matrix: Arc::new(matrix),
                        bytes,
                        last_used: tick,
                        default_scale,
                        alias: alias.map(str::to_string),
                        spec: spec.map(str::to_string),
                    },
                );
                inner.bytes += bytes;
                false
            }
        };
        if let Some(a) = alias {
            inner.aliases.insert(a.to_string(), key);
        }
        if let Some(s) = spec {
            inner.specs.insert(s.to_string(), key);
        }
        let evicted = self.enforce_cap(&mut inner, key);
        InsertOutcome {
            key,
            dedup,
            evicted,
        }
    }

    /// The matrix and its default platform scale, touching LRU recency and
    /// the hit/miss counters.
    pub fn get(&self, key: MatrixKey) -> Option<(Arc<CsrMatrix<f64>>, usize)> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let out = (entry.matrix.clone(), entry.default_scale);
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Key for a previously registered load spec (dataset + scale or
    /// generator parameters) — the warm-registry shortcut that lets a
    /// repeated `load` request skip regenerating and rehashing the matrix.
    pub fn lookup_spec(&self, spec: &str) -> Option<MatrixKey> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let key = inner.specs.get(spec).copied()?;
        // a spec can outlive its entry if the entry was evicted
        let entry = inner.entries.get_mut(&key)?;
        entry.last_used = tick;
        inner.spec_hits += 1;
        Some(key)
    }

    /// Resolve a request token — an alias or a `0x…` key — to a key,
    /// without touching recency.
    pub fn resolve(&self, token: &str) -> Option<MatrixKey> {
        let inner = self.inner.lock().unwrap();
        if let Some(&key) = inner.aliases.get(token) {
            return inner.entries.contains_key(&key).then_some(key);
        }
        let key = super::json::parse_hex64(token)?;
        inner.entries.contains_key(&key).then_some(key)
    }

    /// nnz of a registered matrix without counting a hit (the micro-batch
    /// partitioner peeks sizes before admission).
    pub fn peek_nnz(&self, key: MatrixKey) -> Option<usize> {
        let inner = self.inner.lock().unwrap();
        inner.entries.get(&key).map(|e| e.matrix.nnz())
    }

    /// Current counters.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().unwrap();
        RegistryStats {
            entries: inner.entries.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            dedup_hits: inner.dedup_hits,
            spec_hits: inner.spec_hits,
            evictions: inner.evictions,
        }
    }

    fn enforce_cap(&self, inner: &mut Inner, keep: MatrixKey) -> Vec<MatrixKey> {
        let mut evicted = Vec::new();
        while inner.bytes > self.cap_bytes && inner.entries.len() > 1 {
            let Some((&victim, _)) = inner
                .entries
                .iter()
                .filter(|(&k, _)| k != keep)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let entry = inner.entries.remove(&victim).expect("victim exists");
            inner.bytes -= entry.bytes;
            inner.evictions += 1;
            inner.aliases.retain(|_, &mut k| k != victim);
            inner.specs.retain(|_, &mut k| k != victim);
            evicted.push(victim);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_scalefree::{scale_free_matrix, GeneratorConfig};

    fn matrix(seed: u64) -> CsrMatrix<f64> {
        scale_free_matrix(&GeneratorConfig::square_power_law(200, 1_000, 2.4, seed))
    }

    #[test]
    fn content_dedup_returns_one_key_and_one_arc() {
        let reg = MatrixRegistry::new(usize::MAX);
        let first = reg.insert(matrix(1), Some("m1"), None, 1);
        let second = reg.insert(matrix(1), Some("other-name"), None, 1);
        assert!(!first.dedup);
        assert!(second.dedup);
        assert_eq!(first.key, second.key);
        assert_eq!(reg.stats().entries, 1);
        // both aliases resolve to the shared entry
        assert_eq!(reg.resolve("m1"), Some(first.key));
        assert_eq!(reg.resolve("other-name"), Some(first.key));
        // the two handles share one allocation → ptr-identity fast paths
        let (a, _) = reg.get(first.key).unwrap();
        let (b, _) = reg.get(second.key).unwrap();
        assert!(std::ptr::eq(&*a, &*b));
    }

    #[test]
    fn resolve_accepts_hex_keys() {
        let reg = MatrixRegistry::new(usize::MAX);
        let key = reg.insert(matrix(2), None, None, 1).key;
        assert_eq!(reg.resolve(&super::super::json::hex64(key)), Some(key));
        assert_eq!(reg.resolve("0xdeadbeef"), None);
        assert_eq!(reg.resolve("unknown"), None);
    }

    #[test]
    fn spec_lookup_skips_regeneration() {
        let reg = MatrixRegistry::new(usize::MAX);
        assert_eq!(reg.lookup_spec("dataset:x:32"), None);
        let key = reg
            .insert(matrix(3), Some("x"), Some("dataset:x:32"), 4)
            .key;
        assert_eq!(reg.lookup_spec("dataset:x:32"), Some(key));
        assert!(reg.stats().spec_hits >= 1);
    }

    #[test]
    fn lru_eviction_respects_cap_and_reports_victims() {
        let (m1, m2, m3) = (matrix(10), matrix(11), matrix(12));
        // fits any two of the three, never all three
        let cap = m1.byte_size() + m3.byte_size() + m2.byte_size() / 2;
        let reg = MatrixRegistry::new(cap);
        let k1 = reg.insert(m1, Some("m1"), Some("s1"), 1).key;
        let k2 = reg.insert(m2, Some("m2"), None, 1).key;
        // touch k1 so k2 is the LRU victim when m3 arrives
        reg.get(k1).unwrap();
        let out = reg.insert(m3, Some("m3"), None, 1);
        assert_eq!(out.evicted, vec![k2]);
        assert!(reg.get(k2).is_none());
        assert!(reg.get(k1).is_some());
        assert!(reg.resolve("m2").is_none(), "alias must die with the entry");
        assert_eq!(reg.lookup_spec("s1"), Some(k1));
        let stats = reg.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= cap);
    }

    #[test]
    fn oversized_single_entry_still_serves() {
        let reg = MatrixRegistry::new(8);
        let key = reg.insert(matrix(20), None, None, 1).key;
        assert!(reg.get(key).is_some(), "newest entry is never evicted");
    }
}
