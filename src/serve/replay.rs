//! Trace replay: drive a service from a JSONL request trace, keep every
//! multiply's full engine output, and (optionally) verify each one
//! bit-identical to a cold single-shot run.
//!
//! A trace is one request object per line (the `wire` protocol's
//! payloads without framing); blank lines and `#` comments are skipped.
//! The replayer is both the CI serve-smoke gate (warm ≡ cold, hard fail
//! on drift) and the `serve_*` throughput probe behind `BENCH_pr.json`.

use std::time::{Duration, Instant};

use spmm_core::{hh_cpu, HeteroContext, HhCpuConfig, Platform, ShardConfig, SpmmOutput};

use super::json::{self, Json};
use super::service::{MultiplyReply, MultiplyRequest, SpmmService};
use super::wire;

/// What the replayer should do beyond dispatching.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayOptions {
    /// Re-run every multiply on a fresh cold [`HeteroContext`] and demand
    /// bit-identical output (matrix, profile, thresholds, counters).
    pub verify_cold: bool,
    /// Round-trip every trace line through the JSON writer/parser and the
    /// frame codec, catching wire-layer corruption.
    pub wire_selftest: bool,
}

/// One replayed multiply: the request as parsed plus the service's reply.
#[derive(Debug, Clone)]
pub struct ReplayedMultiply {
    pub request: MultiplyRequest,
    pub reply: MultiplyReply,
}

/// Result of one replay pass.
#[derive(Debug)]
pub struct ReplaySummary {
    /// Trace lines dispatched.
    pub requests: usize,
    /// Multiply products computed (batch items count individually).
    pub multiplies: usize,
    /// Multiplies served from a warm artifact cache.
    pub warm_artifact_hits: usize,
    /// Every multiply with its full engine output, in trace order.
    pub outputs: Vec<ReplayedMultiply>,
    /// Wall-clock time spent dispatching (excludes verification).
    pub wall: Duration,
    /// Human-readable descriptions of every warm-vs-cold bit drift
    /// (empty = the bit-identity contract held).
    pub drifts: Vec<String>,
}

fn selftest_line(line: &str, value: &Json) -> Result<(), String> {
    let reparsed = json::parse(&value.dump()).map_err(|e| format!("dump not parseable: {e}"))?;
    if reparsed != *value {
        return Err(format!(
            "dump/parse round trip changed the document: {line}"
        ));
    }
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, value).map_err(|e| format!("frame write failed: {e}"))?;
    let back = wire::read_frame(&mut buf.as_slice())
        .map_err(|e| format!("frame read failed: {e}"))?
        .ok_or("frame read returned EOF")?;
    if back != *value {
        return Err(format!("frame round trip changed the document: {line}"));
    }
    Ok(())
}

/// Replay `trace` (JSONL) against `service`. Errors on unreadable lines
/// or failed requests; bit drift is reported in `drifts`, not an error,
/// so a gate can print every divergence before failing.
pub fn replay_trace(
    service: &SpmmService,
    trace: &str,
    options: &ReplayOptions,
) -> Result<ReplaySummary, String> {
    let mut summary = ReplaySummary {
        requests: 0,
        multiplies: 0,
        warm_artifact_hits: 0,
        outputs: Vec::new(),
        wall: Duration::ZERO,
        drifts: Vec::new(),
    };
    let start = Instant::now();
    for (lineno, line) in trace.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let context = |msg: String| format!("trace line {}: {msg}", lineno + 1);
        let request =
            json::parse(line).map_err(|e| context(format!("unparseable request: {e}")))?;
        if options.wire_selftest {
            selftest_line(line, &request).map_err(&context)?;
        }
        summary.requests += 1;
        match request.str_field("op") {
            Some("multiply") => {
                let req = wire::parse_multiply(&request).map_err(&context)?;
                let reply = service.multiply(&req).map_err(|e| context(e.to_string()))?;
                record(&mut summary, req, reply);
            }
            Some("batch") => {
                let items = request
                    .get("items")
                    .and_then(Json::as_array)
                    .ok_or_else(|| context("batch needs an \"items\" array".into()))?;
                let mut reqs = Vec::with_capacity(items.len());
                for item in items {
                    reqs.push(wire::parse_multiply(item).map_err(&context)?);
                }
                let replies = service
                    .multiply_batch(&reqs)
                    .map_err(|e| context(e.to_string()))?;
                for (req, reply) in reqs.into_iter().zip(replies) {
                    let reply = reply.map_err(|e| context(e.to_string()))?;
                    record(&mut summary, req, reply);
                }
            }
            Some("shutdown") => break,
            _ => {
                let reply = wire::handle_request(service, &request);
                if reply.get("ok") != Some(&Json::Bool(true)) {
                    return Err(context(format!("request failed: {}", reply.dump())));
                }
            }
        }
    }
    summary.wall = start.elapsed();

    if options.verify_cold {
        for (i, replayed) in summary.outputs.iter().enumerate() {
            if let Err(drift) = verify_against_cold(service, replayed) {
                summary.drifts.push(format!("multiply #{}: {drift}", i + 1));
            }
        }
    }
    Ok(summary)
}

fn record(summary: &mut ReplaySummary, request: MultiplyRequest, reply: MultiplyReply) {
    summary.multiplies += 1;
    if reply.warm {
        summary.warm_artifact_hits += 1;
    }
    summary.outputs.push(ReplayedMultiply { request, reply });
}

/// Run the same product on a fresh, cold, single-shot context and compare
/// every observable bit. The registry hands back `Arc` clones of one
/// allocation for `A = B`, so the cold run exercises the same
/// self-product fast paths the service did.
fn verify_against_cold(service: &SpmmService, replayed: &ReplayedMultiply) -> Result<(), String> {
    let reply = &replayed.reply;
    let (a, _) = service
        .registry()
        .get(reply.a_key)
        .ok_or("operand A evicted before verification")?;
    let (b, _) = service
        .registry()
        .get(reply.b_key)
        .ok_or("operand B evicted before verification")?;
    let config = HhCpuConfig {
        policy: replayed.request.policy,
        ..HhCpuConfig::default()
    };
    let mut ctx = HeteroContext::new(Platform::scaled(reply.scale));
    // A sharded request is cold-verified against a cold *sharded* run:
    // its C must still match the monolithic product bit-for-bit (the
    // shard driver's own gate), but its profile is the documented
    // sum-of-shards aggregate, so the apples-to-apples cold reference is
    // the same driver.
    let shards = replayed.request.shards.unwrap_or(1).max(1);
    let cold = match replayed.request.byte_cap {
        Some(byte_cap) => {
            let shard_config = ShardConfig::out_of_core(shards, byte_cap);
            spmm_core::hh_cpu_sharded(&mut ctx, &a, &b, &config, &shard_config).output
        }
        None if shards > 1 => {
            spmm_core::hh_cpu_sharded(&mut ctx, &a, &b, &config, &ShardConfig::pooled(shards))
                .output
        }
        None => hh_cpu(&mut ctx, &a, &b, &config),
    };
    diff_outputs(&reply.output, &cold)
}

/// Exact comparison of two engine outputs; `Err` describes the first
/// field that diverged.
pub fn diff_outputs(served: &SpmmOutput<f64>, cold: &SpmmOutput<f64>) -> Result<(), String> {
    if served.c != cold.c {
        return Err(format!(
            "product matrices differ (served {} nnz, cold {} nnz)",
            served.c.nnz(),
            cold.c.nnz()
        ));
    }
    if served.profile != cold.profile {
        return Err(format!(
            "profiles differ (served {:?}, cold {:?})",
            served.profile, cold.profile
        ));
    }
    let served_meta = (
        served.threshold_a,
        served.threshold_b,
        served.hd_rows_a,
        served.hd_rows_b,
        served.tuples_merged,
    );
    let cold_meta = (
        cold.threshold_a,
        cold.threshold_b,
        cold.hd_rows_a,
        cold.hd_rows_b,
        cold.tuples_merged,
    );
    if served_meta != cold_meta {
        return Err(format!(
            "decision metadata differs (served {served_meta:?}, cold {cold_meta:?})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::service::ServiceConfig;

    const TRACE: &str = r#"
# tiny replay exercise
{"op":"gen","alias":"t","nrows":250,"nnz":1100,"alpha":2.3,"seed":9}
{"op":"multiply","a":"t","b":"t"}
{"op":"multiply","a":"t","b":"t"}
{"op":"stats"}
"#;

    fn service() -> SpmmService {
        SpmmService::new(ServiceConfig {
            host_threads: Some(2),
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn replay_counts_and_verifies_cold() {
        let service = service();
        let options = ReplayOptions {
            verify_cold: true,
            wire_selftest: true,
        };
        let summary = replay_trace(&service, TRACE, &options).unwrap();
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.multiplies, 2);
        assert_eq!(summary.warm_artifact_hits, 1);
        assert!(summary.drifts.is_empty(), "{:?}", summary.drifts);
        // the two multiplies are bit-identical to each other too
        diff_outputs(
            &summary.outputs[0].reply.output,
            &summary.outputs[1].reply.output,
        )
        .unwrap();
    }

    #[test]
    fn second_pass_is_fully_warm() {
        let service = service();
        let options = ReplayOptions::default();
        replay_trace(&service, TRACE, &options).unwrap();
        let warm = replay_trace(&service, TRACE, &options).unwrap();
        assert_eq!(warm.warm_artifact_hits, warm.multiplies);
    }

    #[test]
    fn bad_lines_name_their_line_number() {
        let service = service();
        let err = replay_trace(&service, "\n{nope\n", &ReplayOptions::default()).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = replay_trace(
            &service,
            r#"{"op":"multiply","a":"ghost","b":"ghost"}"#,
            &ReplayOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("unknown matrix"), "{err}");
    }
}
