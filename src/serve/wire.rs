//! The serve wire protocol: length-prefixed JSON frames.
//!
//! Each frame is a 4-byte little-endian payload length followed by one
//! UTF-8 JSON document. Requests are objects with an `"op"` field;
//! replies always carry `"ok"` (and `"error"` + `"code"` when false).
//! The same dispatcher serves stdio (one session) and a Unix socket (one
//! session per connection, all sharing one [`SpmmService`]).
//!
//! Numeric results cross the wire as *fingerprints*, not payloads: the
//! content hash of `C` and an FNV fingerprint of the nine
//! [`PhaseBreakdown`](spmm_core::PhaseBreakdown) bit patterns. Two runs
//! are bit-identical iff their fingerprints match, which is what the
//! serve-smoke CI gate compares — shipping gigabyte products through CI
//! would test the pipe, not the engine.

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use spmm_core::{PhaseBreakdown, ThresholdPolicy};

use super::json::{self, hex64, Json};
use super::service::{MultiplyReply, MultiplyRequest, ServeError, SpmmService};

/// Hard cap on one frame's payload (catches corrupt length prefixes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Write one frame: 4-byte LE length, then the JSON bytes.
pub fn write_frame<W: Write>(writer: &mut W, value: &Json) -> io::Result<()> {
    let payload = value.dump();
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Read one frame. `Ok(None)` on clean EOF (no bytes of a next frame);
/// mid-frame EOF, oversized lengths, and malformed JSON are errors.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds cap",
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    json::parse(text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// FNV-1a over the nine bit patterns of a [`PhaseBreakdown`] — equal iff
/// the simulated timing is bit-identical.
pub fn profile_fingerprint(profile: &PhaseBreakdown) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let fields = [
        profile.phase1.cpu_ns,
        profile.phase1.gpu_ns,
        profile.phase2.cpu_ns,
        profile.phase2.gpu_ns,
        profile.phase3.cpu_ns,
        profile.phase3.gpu_ns,
        profile.phase4.cpu_ns,
        profile.phase4.gpu_ns,
        profile.transfer_ns,
    ];
    let mut hash = OFFSET;
    for v in fields {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

fn error_reply(err: &ServeError) -> Json {
    let code = match err {
        ServeError::UnknownMatrix(_) => "unknown_matrix",
        ServeError::ShapeMismatch { .. } => "shape_mismatch",
        ServeError::Rejected => "rejected",
        ServeError::BadRequest(_) => "bad_request",
    };
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("code", code.into()),
        ("error", err.to_string().into()),
    ])
}

fn bad_request(message: impl Into<String>) -> Json {
    error_reply(&ServeError::BadRequest(message.into()))
}

fn load_reply(reply: &super::service::LoadReply) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("key", hex64(reply.key).into()),
        ("nrows", reply.nrows.into()),
        ("ncols", reply.ncols.into()),
        ("nnz", reply.nnz.into()),
        ("scale", reply.scale.into()),
        ("warm", reply.warm.into()),
    ])
}

/// The multiply reply fields the replay verifier and CI gate compare.
pub fn multiply_reply(reply: &MultiplyReply) -> Json {
    let out = &reply.output;
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("a_key", hex64(reply.a_key).into()),
        ("b_key", hex64(reply.b_key).into()),
        ("warm", reply.warm.into()),
        ("scale", reply.scale.into()),
        ("c_rows", out.c.nrows().into()),
        ("c_cols", out.c.ncols().into()),
        ("c_nnz", out.c.nnz().into()),
        ("c_hash", hex64(out.c.content_hash()).into()),
        ("total_ns", Json::Num(out.total_ns())),
        (
            "profile_bits",
            hex64(profile_fingerprint(&out.profile)).into(),
        ),
        ("threshold_a", out.threshold_a.into()),
        ("threshold_b", out.threshold_b.into()),
        ("hd_rows_a", out.hd_rows_a.into()),
        ("hd_rows_b", out.hd_rows_b.into()),
        ("tuples_merged", out.tuples_merged.into()),
    ])
}

/// Parse the optional `"policy"` object of a multiply item.
fn parse_policy(value: Option<&Json>) -> Result<ThresholdPolicy, String> {
    let Some(value) = value else {
        return Ok(ThresholdPolicy::default());
    };
    let kind = value
        .str_field("kind")
        .ok_or_else(|| "policy needs a \"kind\"".to_string())?;
    match kind {
        "fixed" => {
            let t_a = value.usize_field("t_a").ok_or("fixed policy needs t_a")?;
            let t_b = value.usize_field("t_b").ok_or("fixed policy needs t_b")?;
            Ok(ThresholdPolicy::Fixed { t_a, t_b })
        }
        "balanced" => Ok(ThresholdPolicy::Balanced {
            candidates: value.usize_field("candidates").unwrap_or(10),
        }),
        "empirical" => Ok(ThresholdPolicy::Empirical {
            candidates: value.usize_field("candidates").unwrap_or(10),
        }),
        other => Err(format!("unknown policy kind {other:?}")),
    }
}

/// Parse one multiply item (the `multiply` op body or one `batch` entry).
pub fn parse_multiply(item: &Json) -> Result<MultiplyRequest, String> {
    let a = item.str_field("a").ok_or("multiply needs \"a\"")?;
    let b = item.str_field("b").ok_or("multiply needs \"b\"")?;
    Ok(MultiplyRequest {
        a: a.to_string(),
        b: b.to_string(),
        policy: parse_policy(item.get("policy"))?,
        scale: item.usize_field("scale"),
        shards: item.usize_field("shards"),
        byte_cap: item.usize_field("byte_cap"),
    })
}

fn stats_reply(service: &SpmmService) -> Json {
    let stats = service.stats();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        (
            "registry",
            Json::obj(vec![
                ("entries", stats.registry.entries.into()),
                ("bytes", stats.registry.bytes.into()),
                ("hits", (stats.registry.hits as usize).into()),
                ("misses", (stats.registry.misses as usize).into()),
                ("dedup_hits", (stats.registry.dedup_hits as usize).into()),
                ("spec_hits", (stats.registry.spec_hits as usize).into()),
                ("evictions", (stats.registry.evictions as usize).into()),
            ]),
        ),
        (
            "artifacts",
            Json::obj(vec![
                ("entries", stats.artifacts.entries.into()),
                ("bytes", stats.artifacts.bytes.into()),
                ("hits", (stats.artifacts.hits as usize).into()),
                ("misses", (stats.artifacts.misses as usize).into()),
                ("evictions", (stats.artifacts.evictions as usize).into()),
                ("purged", (stats.artifacts.purged as usize).into()),
            ]),
        ),
        (
            "admission",
            Json::obj(vec![
                ("admitted", (stats.admission.admitted as usize).into()),
                ("rejected", (stats.admission.rejected as usize).into()),
            ]),
        ),
    ])
}

/// Dispatch one request object to the service. Always returns a reply
/// frame; protocol errors become `{"ok":false,…}` rather than panics.
pub fn handle_request(service: &SpmmService, request: &Json) -> Json {
    let Some(op) = request.str_field("op") else {
        return bad_request("request needs an \"op\" field");
    };
    match op {
        "ping" => Json::obj(vec![("ok", Json::Bool(true)), ("op", "ping".into())]),
        "shutdown" => Json::obj(vec![("ok", Json::Bool(true)), ("op", "shutdown".into())]),
        "stats" => stats_reply(service),
        "load_dataset" => {
            let Some(name) = request.str_field("name") else {
                return bad_request("load_dataset needs \"name\"");
            };
            let scale = request.usize_field("scale").unwrap_or(1);
            match service.load_dataset(name, scale) {
                Ok(reply) => load_reply(&reply),
                Err(err) => error_reply(&err),
            }
        }
        "gen" => {
            let (Some(nrows), Some(nnz)) =
                (request.usize_field("nrows"), request.usize_field("nnz"))
            else {
                return bad_request("gen needs \"nrows\" and \"nnz\"");
            };
            let alpha = request.get("alpha").and_then(Json::as_f64).unwrap_or(2.5);
            let seed = request.usize_field("seed").unwrap_or(0) as u64;
            let scale = request.usize_field("scale").unwrap_or(1);
            let reply =
                service.load_generated(request.str_field("alias"), nrows, nnz, alpha, seed, scale);
            load_reply(&reply)
        }
        "load_path" => {
            let Some(path) = request.str_field("path") else {
                return bad_request("load_path needs \"path\"");
            };
            let scale = request.usize_field("scale").unwrap_or(1);
            match spmm_sparse::io::read_matrix_market::<f64, _>(path) {
                Ok(matrix) => {
                    let reply = service.insert_matrix(matrix, request.str_field("alias"), scale);
                    load_reply(&reply)
                }
                Err(err) => bad_request(format!("cannot load {path:?}: {err}")),
            }
        }
        "multiply" => match parse_multiply(request) {
            Ok(req) => match service.multiply(&req) {
                Ok(reply) => multiply_reply(&reply),
                Err(err) => error_reply(&err),
            },
            Err(msg) => bad_request(msg),
        },
        "batch" => {
            let Some(items) = request.get("items").and_then(Json::as_array) else {
                return bad_request("batch needs an \"items\" array");
            };
            let mut requests = Vec::with_capacity(items.len());
            for item in items {
                match parse_multiply(item) {
                    Ok(req) => requests.push(req),
                    Err(msg) => return bad_request(msg),
                }
            }
            match service.multiply_batch(&requests) {
                Ok(replies) => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    (
                        "items",
                        Json::Arr(
                            replies
                                .iter()
                                .map(|r| match r {
                                    Ok(reply) => multiply_reply(reply),
                                    Err(err) => error_reply(err),
                                })
                                .collect(),
                        ),
                    ),
                ]),
                Err(err) => error_reply(&err),
            }
        }
        other => bad_request(format!("unknown op {other:?}")),
    }
}

/// Serve one session over a read/write stream pair until EOF or a
/// `shutdown` request. Returns whether shutdown was requested.
pub fn serve_stream<R: Read, W: Write>(
    service: &SpmmService,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<bool> {
    while let Some(request) = read_frame(reader)? {
        let reply = handle_request(service, &request);
        write_frame(writer, &reply)?;
        if request.str_field("op") == Some("shutdown") {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serve one session on stdin/stdout (the default `spmm_serve` mode).
pub fn serve_stdio(service: &SpmmService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_stream(service, &mut stdin.lock(), &mut stdout.lock())?;
    Ok(())
}

/// Serve concurrent sessions on a Unix socket, one thread per connection,
/// all sharing `service`. Returns when any session requests `shutdown`.
#[cfg(unix)]
pub fn serve_unix(service: Arc<SpmmService>, path: &Path) -> io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};

    let _ = std::fs::remove_file(path); // stale socket from a previous run
    let listener = UnixListener::bind(path)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let service = service.clone();
        let shutdown = shutdown.clone();
        let wake_path = path.to_path_buf();
        handles.push(std::thread::spawn(move || {
            let mut reader = match stream.try_clone() {
                Ok(r) => r,
                Err(_) => return,
            };
            let mut writer = stream;
            if serve_stream(&service, &mut reader, &mut writer).unwrap_or(false) {
                shutdown.store(true, Ordering::SeqCst);
                // unblock the accept loop so it observes the flag
                let _ = UnixStream::connect(&wake_path);
            }
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::service::ServiceConfig;
    use std::io::Cursor;

    fn service() -> SpmmService {
        SpmmService::new(ServiceConfig {
            host_threads: Some(2),
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let doc = json::parse(r#"{"op":"ping","n":42}"#).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        write_frame(&mut buf, &doc).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(doc.clone()));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(doc));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn truncated_and_oversized_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::Null).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut Cursor::new(buf)).is_err());

        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes().to_vec();
        assert!(read_frame(&mut Cursor::new(huge)).is_err());

        let mut partial_len = vec![1u8, 0];
        assert!(read_frame(&mut Cursor::new(std::mem::take(&mut partial_len))).is_err());
    }

    #[test]
    fn full_session_over_in_memory_streams() {
        let service = service();
        let mut input = Vec::new();
        for line in [
            r#"{"op":"gen","alias":"g","nrows":200,"nnz":900,"alpha":2.4,"seed":7}"#,
            r#"{"op":"multiply","a":"g","b":"g"}"#,
            r#"{"op":"multiply","a":"g","b":"g"}"#,
            r#"{"op":"stats"}"#,
            r#"{"op":"shutdown"}"#,
        ] {
            write_frame(&mut input, &json::parse(line).unwrap()).unwrap();
        }
        let mut output = Vec::new();
        let shut = serve_stream(&service, &mut Cursor::new(input), &mut output).unwrap();
        assert!(shut);

        let mut cursor = Cursor::new(output);
        let mut replies = Vec::new();
        while let Some(reply) = read_frame(&mut cursor).unwrap() {
            replies.push(reply);
        }
        assert_eq!(replies.len(), 5);
        for reply in &replies {
            assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply:?}");
        }
        // second multiply is warm and bit-identical to the first
        assert_eq!(replies[1].get("warm"), Some(&Json::Bool(false)));
        assert_eq!(replies[2].get("warm"), Some(&Json::Bool(true)));
        for key in ["c_hash", "c_nnz", "profile_bits", "total_ns", "threshold_a"] {
            assert_eq!(replies[1].get(key), replies[2].get(key), "{key} drifted");
        }
        let arts = replies[3].get("artifacts").unwrap();
        assert_eq!(arts.usize_field("hits"), Some(1));
    }

    #[test]
    fn protocol_errors_are_replies_not_panics() {
        let service = service();
        for (line, code) in [
            (r#"{"no_op":1}"#, "bad_request"),
            (r#"{"op":"warp"}"#, "bad_request"),
            (
                r#"{"op":"multiply","a":"ghost","b":"ghost"}"#,
                "unknown_matrix",
            ),
            (r#"{"op":"load_dataset","name":"nope"}"#, "bad_request"),
            (r#"{"op":"multiply","a":"x"}"#, "bad_request"),
            (
                r#"{"op":"multiply","a":"x","b":"x","policy":{"kind":"warp"}}"#,
                "bad_request",
            ),
        ] {
            let reply = handle_request(&service, &json::parse(line).unwrap());
            assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{line}");
            assert_eq!(reply.str_field("code"), Some(code), "{line}");
        }
    }

    #[test]
    fn profile_fingerprint_separates_close_profiles() {
        use spmm_core::PhaseBreakdown;
        let a = PhaseBreakdown::default();
        let b = PhaseBreakdown {
            transfer_ns: f64::MIN_POSITIVE, // one ulp of drift must be visible
            ..Default::default()
        };
        assert_ne!(profile_fingerprint(&a), profile_fingerprint(&b));
        assert_eq!(profile_fingerprint(&a), profile_fingerprint(&a.clone()));
    }
}
