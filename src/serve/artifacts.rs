//! Per-`(A, B, policy, scale)` cache of Phase-I artifacts.
//!
//! One [`SpmmArtifacts`] (thresholds, Boolean masks, symbolic structures,
//! masked GPU width tables) is the entire non-numeric preprocessing of an
//! HH-CPU run — the empirical threshold search alone costs ~10 cost-model
//! dry runs. A warm request fetches the `Arc` and goes straight to the
//! phases, skipping Phase I's host-side work entirely while still being
//! charged its *simulated* nanoseconds, so the reply is bit-identical to a
//! cold single-shot run.
//!
//! The key includes the platform scale because thresholds are picked by
//! the device cost models: the same operands on a differently scaled
//! platform legitimately pick different thresholds.
//!
//! The key deliberately does *not* include the fused-tier pin
//! (`SPMM_FUSED` / `binning::fused`): artifacts are pre-numeric (they
//! record thresholds, masks, and width tables, never engine scratch),
//! and the fused single-pass tier is bit-identical to the two-pass
//! oracle by contract — so artifacts built while the pin was off serve
//! fused requests unchanged, and vice versa. `serve_equivalence`'s
//! fused-flip test pins that reuse.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use spmm_core::{SpmmArtifacts, ThresholdPolicy};

use super::registry::MatrixKey;

/// Identity of one cached Phase-I computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Content hash of `A`.
    pub a: MatrixKey,
    /// Content hash of `B`.
    pub b: MatrixKey,
    /// Threshold policy the plan was built under.
    pub policy: ThresholdPolicy,
    /// Platform scale ([`spmm_core::Platform::scaled`] argument).
    pub scale: usize,
    /// Shard count the multiply executes under (1 = monolithic). The
    /// *artifacts* are shard-invariant — the sharded driver slices one
    /// global plan — so on a sharded miss the service aliases the
    /// monolithic entry's `Arc` under the sharded key rather than
    /// rebuilding; the key still carries the count so cache stats and
    /// purges see the sharded traffic distinctly.
    pub shards: usize,
}

/// Counters exposed by [`ArtifactCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactStats {
    pub entries: usize,
    pub bytes: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub purged: u64,
}

#[derive(Debug)]
struct Entry {
    artifacts: Arc<SpmmArtifacts>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<ArtifactKey, Entry>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    purged: u64,
}

/// Thread-safe LRU cache of shared [`SpmmArtifacts`].
#[derive(Debug)]
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    cap_bytes: usize,
}

impl ArtifactCache {
    /// Cache bounded to `cap_bytes` (`usize::MAX` for unbounded).
    pub fn new(cap_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            cap_bytes,
        }
    }

    /// Fetch, touching LRU recency and the hit/miss counters.
    pub fn get(&self, key: &ArtifactKey) -> Option<Arc<SpmmArtifacts>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let out = entry.artifacts.clone();
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting LRU entries over the cap.
    /// The entry just inserted is never evicted.
    pub fn insert(&self, key: ArtifactKey, artifacts: Arc<SpmmArtifacts>) {
        let bytes = artifacts.byte_size();
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                artifacts,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.bytes > self.cap_bytes && inner.map.len() > 1 {
            let Some((&victim, _)) = inner
                .map
                .iter()
                .filter(|(&k, _)| k != key)
                .min_by_key(|(_, e)| e.last_used)
            else {
                break;
            };
            let entry = inner.map.remove(&victim).expect("victim exists");
            inner.bytes -= entry.bytes;
            inner.evictions += 1;
        }
    }

    /// Drop every entry whose `A` or `B` is `matrix` — called when the
    /// registry evicts a matrix, so artifacts can never outlive their
    /// operands' registration.
    pub fn purge_matrix(&self, matrix: MatrixKey) {
        let mut inner = self.inner.lock().unwrap();
        let victims: Vec<ArtifactKey> = inner
            .map
            .keys()
            .filter(|k| k.a == matrix || k.b == matrix)
            .copied()
            .collect();
        for key in victims {
            let entry = inner.map.remove(&key).expect("victim exists");
            inner.bytes -= entry.bytes;
            inner.purged += 1;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ArtifactStats {
        let inner = self.inner.lock().unwrap();
        ArtifactStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            purged: inner.purged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_core::HeteroContext;
    use spmm_scalefree::{scale_free_matrix, GeneratorConfig};

    fn build(seed: u64) -> Arc<SpmmArtifacts> {
        let ctx = HeteroContext::paper().with_host_threads(1);
        let a = scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(150, 700, 2.5, seed));
        Arc::new(SpmmArtifacts::build(
            &ctx,
            &a,
            &a,
            ThresholdPolicy::default(),
        ))
    }

    fn key(a: MatrixKey, b: MatrixKey) -> ArtifactKey {
        ArtifactKey {
            a,
            b,
            policy: ThresholdPolicy::default(),
            scale: 1,
            shards: 1,
        }
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = ArtifactCache::new(usize::MAX);
        let art = build(1);
        cache.insert(key(1, 1), art.clone());
        let hit = cache.get(&key(1, 1)).unwrap();
        assert!(Arc::ptr_eq(&hit, &art));
        assert!(cache.get(&key(2, 2)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn purge_matrix_drops_both_sides() {
        let cache = ArtifactCache::new(usize::MAX);
        cache.insert(key(1, 2), build(2));
        cache.insert(key(3, 1), build(3));
        cache.insert(key(4, 5), build(4));
        cache.purge_matrix(1);
        assert!(cache.get(&key(1, 2)).is_none());
        assert!(cache.get(&key(3, 1)).is_none());
        assert!(cache.get(&key(4, 5)).is_some());
        assert_eq!(cache.stats().purged, 2);
    }

    #[test]
    fn lru_eviction_under_cap() {
        let a1 = build(5);
        let cap = a1.byte_size() * 2 + 64;
        let cache = ArtifactCache::new(cap);
        cache.insert(key(1, 1), a1);
        cache.insert(key(2, 2), build(6));
        cache.get(&key(1, 1)).unwrap(); // key 2 becomes LRU
        cache.insert(key(3, 3), build(7));
        assert!(cache.get(&key(2, 2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(1, 1)).is_some());
        assert!(cache.get(&key(3, 3)).is_some());
        assert!(cache.stats().bytes <= cap);
        assert_eq!(cache.stats().evictions, 1);
    }
}
