//! The long-lived SpMM service: sessions share one matrix registry, one
//! artifact cache, one workspace pool, and one admission gate.
//!
//! Request lifecycle:
//!
//! 1. **Admission.** A bounded gate caps concurrently executing requests
//!    and the queue behind them; beyond that, requests are rejected
//!    immediately (back-pressure the caller can see) instead of piling up.
//! 2. **Resolve.** Operand tokens (alias or `0x…` content hash) resolve
//!    through the registry; `A = B` requests share one `Arc`, so the
//!    engine's pointer-keyed self-product fast paths fire exactly as in a
//!    single-shot run.
//! 3. **Artifacts.** The `(A, B, policy, scale)` artifact cache either
//!    hits (warm: Phase I's host-side work is skipped entirely) or the
//!    artifacts are built once and published for every later request.
//! 4. **Execute.** A per-request [`HeteroContext`] is assembled from fresh
//!    device models (simulated caches start cold, like every single-shot
//!    run) plus the *shared* host pool and workspace pool, and
//!    [`hh_cpu_with_artifacts`] runs the phases.
//!
//! The bit-identity contract: a warm reply equals a cold single-shot
//! [`hh_cpu`](spmm_core::hh_cpu) on the same operands — same `C`, same
//! [`PhaseBreakdown`](spmm_core::PhaseBreakdown), same thresholds — which
//! `tests/serve_equivalence.rs` and the CI serve-smoke replay enforce.

use std::sync::{Arc, Condvar, Mutex};

use spmm_core::{
    hh_cpu_sharded_with_artifacts, hh_cpu_with_artifacts, HeteroContext, HhCpuConfig, Platform,
    ShardConfig, SpmmArtifacts, SpmmOutput, ThresholdPolicy,
};
use spmm_parallel::ThreadPool;
use spmm_scalefree::{scale_free_matrix, Dataset, GeneratorConfig};
use spmm_sparse::{CsrMatrix, WorkspacePool};

use super::artifacts::{ArtifactCache, ArtifactKey, ArtifactStats};
use super::registry::{MatrixKey, MatrixRegistry, RegistryStats};

/// Tunables of one service instance.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Host threads for the shared pool (`None` ⇒ available parallelism).
    pub host_threads: Option<usize>,
    /// Requests allowed to execute concurrently.
    pub max_inflight: usize,
    /// Requests allowed to wait behind the executing ones; beyond this the
    /// gate rejects.
    pub queue_depth: usize,
    /// Byte cap on registered matrices (LRU eviction).
    pub registry_cap_bytes: usize,
    /// Byte cap on cached artifacts (LRU eviction).
    pub artifact_cap_bytes: usize,
    /// Batch requests whose `nnz(A) + nnz(B)` is below this run
    /// items-parallel across the pool with a serial engine each (one
    /// guided pass over the whole batch) instead of one-at-a-time with a
    /// parallel engine — per-product parallelism cannot amortise on
    /// products this small.
    pub micro_batch_nnz: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            host_threads: None,
            max_inflight: 4,
            queue_depth: 64,
            registry_cap_bytes: usize::MAX,
            artifact_cap_bytes: usize::MAX,
            micro_batch_nnz: 40_000,
        }
    }
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No registered matrix for this token.
    UnknownMatrix(String),
    /// `A.ncols != B.nrows`.
    ShapeMismatch {
        a: (usize, usize),
        b: (usize, usize),
    },
    /// Admission control turned the request away (queue full).
    Rejected,
    /// Malformed request (bad op, missing field, unknown dataset, …).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownMatrix(tok) => write!(f, "unknown matrix {tok:?}"),
            ServeError::ShapeMismatch { a, b } => {
                write!(f, "shape mismatch: A is {a:?}, B is {b:?}")
            }
            ServeError::Rejected => write!(f, "rejected: request queue full"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One multiply request, operands by registry token.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplyRequest {
    /// Alias or `0x…` content hash of `A`.
    pub a: String,
    /// Alias or `0x…` content hash of `B`.
    pub b: String,
    /// Phase-I threshold policy (the artifact-cache key's third leg).
    pub policy: ThresholdPolicy,
    /// Platform scale; `None` ⇒ the scale `A` was registered with.
    pub scale: Option<usize>,
    /// Row-band shard count; `None` or `Some(1)` ⇒ monolithic. Sharded
    /// requests run the pooled shard driver against the same cached
    /// artifacts (the plan is shard-invariant) and reply with a `C`
    /// bit-identical to the monolithic multiply.
    pub shards: Option<usize>,
    /// Resident-byte budget; `Some` routes the request through
    /// [`spmm_core::ShardMode::OutOfCore`] (pipelined band compute +
    /// write-behind spill under the cap) instead of the pooled driver. An
    /// execution-mode knob: C stays bit-identical and the artifact cache
    /// key is unchanged (artifacts are mode-invariant).
    pub byte_cap: Option<usize>,
}

impl MultiplyRequest {
    /// `A × B` under the default (empirical) policy at `A`'s scale.
    pub fn new(a: impl Into<String>, b: impl Into<String>) -> Self {
        Self {
            a: a.into(),
            b: b.into(),
            policy: ThresholdPolicy::default(),
            scale: None,
            shards: None,
            byte_cap: None,
        }
    }

    /// Same request, executed as `shards` row bands.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Same request, executed out-of-core under `byte_cap` resident bytes.
    pub fn with_byte_cap(mut self, byte_cap: usize) -> Self {
        self.byte_cap = Some(byte_cap);
        self
    }
}

/// A served multiply: the full engine output plus serving metadata.
#[derive(Debug, Clone)]
pub struct MultiplyReply {
    /// The engine's output, bit-identical to a cold single-shot run.
    pub output: SpmmOutput<f64>,
    /// Platform scale the run used.
    pub scale: usize,
    /// The artifact cache was warm (Phase I skipped).
    pub warm: bool,
    /// Content hash of `A`.
    pub a_key: MatrixKey,
    /// Content hash of `B`.
    pub b_key: MatrixKey,
}

/// Reply to a load/register request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReply {
    pub key: MatrixKey,
    pub nrows: usize,
    pub ncols: usize,
    pub nnz: usize,
    /// Default platform scale attached to the entry.
    pub scale: usize,
    /// The content (or its load spec) was already registered.
    pub warm: bool,
}

/// Admission counters exposed by [`SpmmService::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    pub admitted: u64,
    pub rejected: u64,
}

/// Aggregated service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    pub registry: RegistryStats,
    pub artifacts: ArtifactStats,
    pub admission: AdmissionStats,
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    queued: usize,
    admitted: u64,
    rejected: u64,
}

/// Bounded two-stage admission gate: `max_active` requests execute, up to
/// `max_queued` wait, the rest are rejected without blocking.
#[derive(Debug)]
pub struct AdmissionGate {
    max_active: usize,
    max_queued: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

/// RAII execution slot; dropping it wakes one queued request.
#[derive(Debug)]
pub struct AdmissionPermit<'g> {
    gate: &'g AdmissionGate,
}

impl AdmissionGate {
    pub fn new(max_active: usize, max_queued: usize) -> Self {
        assert!(max_active >= 1, "need at least one execution slot");
        Self {
            max_active,
            max_queued,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    /// Claim an execution slot, waiting in the bounded queue if necessary.
    pub fn enter(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let mut state = self.state.lock().unwrap();
        if state.active >= self.max_active {
            if state.queued >= self.max_queued {
                state.rejected += 1;
                return Err(ServeError::Rejected);
            }
            state.queued += 1;
            while state.active >= self.max_active {
                state = self.cv.wait(state).unwrap();
            }
            state.queued -= 1;
        }
        state.active += 1;
        state.admitted += 1;
        Ok(AdmissionPermit { gate: self })
    }

    fn stats(&self) -> AdmissionStats {
        let state = self.state.lock().unwrap();
        AdmissionStats {
            admitted: state.admitted,
            rejected: state.rejected,
        }
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().unwrap();
        state.active -= 1;
        drop(state);
        self.gate.cv.notify_one();
    }
}

/// The long-lived service. `Sync`: wrap in an `Arc` and hand clones to
/// every session thread.
#[derive(Debug)]
pub struct SpmmService {
    config: ServiceConfig,
    registry: MatrixRegistry,
    artifacts: ArtifactCache,
    pool: ThreadPool,
    workspaces: Arc<WorkspacePool>,
    gate: AdmissionGate,
}

impl SpmmService {
    pub fn new(config: ServiceConfig) -> Self {
        let pool = match config.host_threads {
            Some(n) => ThreadPool::new(n),
            None => ThreadPool::host(),
        };
        Self {
            registry: MatrixRegistry::new(config.registry_cap_bytes),
            artifacts: ArtifactCache::new(config.artifact_cap_bytes),
            pool,
            workspaces: Arc::new(WorkspacePool::new()),
            gate: AdmissionGate::new(config.max_inflight, config.queue_depth),
            config,
        }
    }

    /// The shared matrix registry.
    pub fn registry(&self) -> &MatrixRegistry {
        &self.registry
    }

    /// The shared artifact cache.
    pub fn artifact_cache(&self) -> &ArtifactCache {
        &self.artifacts
    }

    /// Aggregated counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            registry: self.registry.stats(),
            artifacts: self.artifacts.stats(),
            admission: self.gate.stats(),
        }
    }

    /// Register an in-memory matrix under `alias`, default scale
    /// `scale`.
    pub fn insert_matrix(
        &self,
        matrix: CsrMatrix<f64>,
        alias: Option<&str>,
        scale: usize,
    ) -> LoadReply {
        self.register(matrix, alias, None, scale)
    }

    /// Load a Table-I catalog clone at `1/scale` size. Warm re-loads of
    /// the same `(name, scale)` spec skip regeneration entirely.
    pub fn load_dataset(&self, name: &str, scale: usize) -> Result<LoadReply, ServeError> {
        let dataset = Dataset::by_name(name)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown dataset {name:?}")))?;
        let effective = dataset.effective_scale(scale.max(1));
        let spec = format!("dataset:{}:{effective}", dataset.entry().name);
        if let Some(reply) = self.warm_load(&spec, effective) {
            return Ok(reply);
        }
        let matrix = dataset.load::<f64>(scale.max(1));
        Ok(self.register(matrix, Some(dataset.entry().name), Some(&spec), effective))
    }

    /// Generate and register a square power-law matrix. Warm repeats of
    /// the same parameters skip regeneration.
    pub fn load_generated(
        &self,
        alias: Option<&str>,
        nrows: usize,
        nnz: usize,
        alpha: f64,
        seed: u64,
        scale: usize,
    ) -> LoadReply {
        let spec = format!("gen:{nrows}:{nnz}:{alpha}:{seed}");
        if let Some(mut reply) = self.warm_load(&spec, scale) {
            if let Some(a) = alias {
                // refresh the alias binding without regenerating
                if let Some((m, _)) = self.registry.get(reply.key) {
                    let out = self
                        .registry
                        .insert((*m).clone(), Some(a), Some(&spec), scale);
                    reply.warm = out.dedup;
                }
            }
            return reply;
        }
        let matrix =
            scale_free_matrix::<f64>(&GeneratorConfig::square_power_law(nrows, nnz, alpha, seed));
        self.register(matrix, alias, Some(&spec), scale)
    }

    /// One admitted multiply.
    pub fn multiply(&self, request: &MultiplyRequest) -> Result<MultiplyReply, ServeError> {
        let _permit = self.gate.enter()?;
        self.multiply_unguarded(request, None)
    }

    /// A batch of multiplies under **one** admission slot, with
    /// micro-batching: small products (by `nnz(A) + nnz(B)`) run
    /// items-parallel across the host pool in one guided pass, each with a
    /// serial engine; large products run one at a time with the parallel
    /// engine. Outputs are positionally matched to `requests` and
    /// bit-identical to serving each request alone — the engine is
    /// thread-count-invariant, which the equivalence suite pins.
    pub fn multiply_batch(
        &self,
        requests: &[MultiplyRequest],
    ) -> Result<Vec<Result<MultiplyReply, ServeError>>, ServeError> {
        let _permit = self.gate.enter()?;
        let small: Vec<usize> = (0..requests.len())
            .filter(|&i| self.is_small(&requests[i]))
            .collect();
        let mut replies: Vec<Option<Result<MultiplyReply, ServeError>>> =
            requests.iter().map(|_| None).collect();
        // one guided pass over all small products: the pool parallelises
        // *across* requests, each request runs the serial engine
        let serial = ThreadPool::new(1);
        for (slot, reply) in small.iter().zip(self.pool.par_map(small.len(), |i| {
            self.multiply_unguarded(&requests[small[i]], Some(&serial))
        })) {
            replies[*slot] = Some(reply);
        }
        for (i, request) in requests.iter().enumerate() {
            if replies[i].is_none() {
                replies[i] = Some(self.multiply_unguarded(request, None));
            }
        }
        Ok(replies
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect())
    }

    fn is_small(&self, request: &MultiplyRequest) -> bool {
        let nnz = |token: &str| {
            self.registry
                .resolve(token)
                .and_then(|k| self.registry.peek_nnz(k))
        };
        match (nnz(&request.a), nnz(&request.b)) {
            (Some(a), Some(b)) => a + b < self.config.micro_batch_nnz,
            // unknown operands error out on the sequential path
            _ => false,
        }
    }

    fn warm_load(&self, spec: &str, scale: usize) -> Option<LoadReply> {
        let key = self.registry.lookup_spec(spec)?;
        let (matrix, _) = self.registry.get(key)?;
        Some(LoadReply {
            key,
            nrows: matrix.nrows(),
            ncols: matrix.ncols(),
            nnz: matrix.nnz(),
            scale,
            warm: true,
        })
    }

    fn register(
        &self,
        matrix: CsrMatrix<f64>,
        alias: Option<&str>,
        spec: Option<&str>,
        scale: usize,
    ) -> LoadReply {
        let (nrows, ncols, nnz) = (matrix.nrows(), matrix.ncols(), matrix.nnz());
        let outcome = self.registry.insert(matrix, alias, spec, scale);
        for evicted in &outcome.evicted {
            self.artifacts.purge_matrix(*evicted);
        }
        LoadReply {
            key: outcome.key,
            nrows,
            ncols,
            nnz,
            scale,
            warm: outcome.dedup,
        }
    }

    /// The multiply body, shared by the admitted single and batch paths.
    /// `pool_override` swaps the engine's host pool (micro-batch workers
    /// pass a serial pool); simulated results are pool-invariant.
    fn multiply_unguarded(
        &self,
        request: &MultiplyRequest,
        pool_override: Option<&ThreadPool>,
    ) -> Result<MultiplyReply, ServeError> {
        let a_key = self
            .registry
            .resolve(&request.a)
            .ok_or_else(|| ServeError::UnknownMatrix(request.a.clone()))?;
        let b_key = self
            .registry
            .resolve(&request.b)
            .ok_or_else(|| ServeError::UnknownMatrix(request.b.clone()))?;
        let (a, a_scale) = self
            .registry
            .get(a_key)
            .ok_or_else(|| ServeError::UnknownMatrix(request.a.clone()))?;
        let (b, _) = self
            .registry
            .get(b_key)
            .ok_or_else(|| ServeError::UnknownMatrix(request.b.clone()))?;
        if a.ncols() != b.nrows() {
            return Err(ServeError::ShapeMismatch {
                a: a.shape(),
                b: b.shape(),
            });
        }
        let scale = request.scale.unwrap_or(a_scale).max(1);
        let pool = pool_override.unwrap_or(&self.pool).clone();
        let mut ctx =
            HeteroContext::with_shared(Platform::scaled(scale), pool, self.workspaces.clone());

        let shards = request.shards.unwrap_or(1).max(1);
        let key = ArtifactKey {
            a: a_key,
            b: b_key,
            policy: request.policy,
            scale,
            shards,
        };
        let (artifacts, warm) = match self.artifacts.get(&key) {
            Some(hit) => (hit, true),
            None => {
                // Artifacts are shard-invariant (the sharded driver slices
                // one global plan), so a sharded miss can alias another
                // shard count's entry instead of re-running Phase I.
                let alias = (shards != 1)
                    .then(|| self.artifacts.get(&ArtifactKey { shards: 1, ..key }))
                    .flatten();
                match alias {
                    Some(hit) => {
                        self.artifacts.insert(key, hit.clone());
                        (hit, true)
                    }
                    None => {
                        let built = Arc::new(SpmmArtifacts::build(&ctx, &*a, &*b, request.policy));
                        self.artifacts.insert(key, built.clone());
                        (built, false)
                    }
                }
            }
        };
        let config = HhCpuConfig {
            policy: request.policy,
            ..HhCpuConfig::default()
        };
        let output = if shards > 1 || request.byte_cap.is_some() {
            // byte_cap selects the out-of-core mode on the same sharded
            // driver (and same artifacts) the pooled path uses; a capped
            // request without an explicit shard count runs as one band.
            let shard_config = match request.byte_cap {
                Some(byte_cap) => ShardConfig::out_of_core(shards, byte_cap),
                None => ShardConfig::pooled(shards),
            };
            hh_cpu_sharded_with_artifacts(&mut ctx, &a, &b, &config, &shard_config, &artifacts)
                .output
        } else {
            hh_cpu_with_artifacts(&mut ctx, &a, &b, &config, &artifacts)
        };
        Ok(MultiplyReply {
            output,
            scale,
            warm,
            a_key,
            b_key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_rejects_beyond_queue_depth() {
        let gate = AdmissionGate::new(1, 0);
        let held = gate.enter().unwrap();
        assert_eq!(gate.enter().err(), Some(ServeError::Rejected));
        drop(held);
        let again = gate.enter().unwrap();
        drop(again);
        let stats = gate.stats();
        assert_eq!((stats.admitted, stats.rejected), (2, 1));
    }

    #[test]
    fn gate_queues_up_to_depth() {
        let gate = Arc::new(AdmissionGate::new(1, 2));
        let held = gate.enter().unwrap();
        let (g1, g2) = (gate.clone(), gate.clone());
        let h1 = std::thread::spawn(move || g1.enter().map(|_| ()).is_ok());
        let h2 = std::thread::spawn(move || g2.enter().map(|_| ()).is_ok());
        // give both a moment to reach the queue, then free the slot
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(held);
        assert!(h1.join().unwrap());
        assert!(h2.join().unwrap());
    }

    #[test]
    fn unknown_operands_and_shape_mismatch_error_cleanly() {
        let service = SpmmService::new(ServiceConfig {
            host_threads: Some(1),
            ..ServiceConfig::default()
        });
        let err = service
            .multiply(&MultiplyRequest::new("ghost", "ghost"))
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownMatrix(_)));

        service.load_generated(Some("sq"), 100, 400, 2.5, 1, 1);
        let rect = CsrMatrix::<f64>::zeros(50, 70);
        service.insert_matrix(rect, Some("rect"), 1);
        let err = service
            .multiply(&MultiplyRequest::new("sq", "rect"))
            .unwrap_err();
        assert!(matches!(err, ServeError::ShapeMismatch { .. }));
    }

    #[test]
    fn unknown_dataset_is_a_bad_request() {
        let service = SpmmService::new(ServiceConfig::default());
        assert!(matches!(
            service.load_dataset("no-such-matrix", 32),
            Err(ServeError::BadRequest(_))
        ));
    }
}
