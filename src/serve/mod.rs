//! # The SpMM service layer
//!
//! Everything a long-lived multiply server needs, built on the engine in
//! [`spmm_core`]:
//!
//! - [`registry`] — content-addressed store of loaded matrices. One copy
//!   per distinct content, LRU-evicted under a byte cap; `A = B` requests
//!   resolve to one `Arc`, so the engine's pointer-keyed self-product fast
//!   paths fire exactly as in single-shot runs.
//! - [`artifacts`] — per-`(A, B, policy, scale)` cache of
//!   [`SpmmArtifacts`](spmm_core::SpmmArtifacts): thresholds, symbolic
//!   structures and masked width tables. Warm requests skip all of
//!   Phase I's host-side work while replies stay bit-identical to cold
//!   single-shot runs (the warm ≡ cold contract, see `DESIGN.md` §3.5).
//! - [`service`] — [`SpmmService`]: the shared thread pool + workspace
//!   pool, admission control (bounded queue, immediate rejection beyond),
//!   and micro-batching of small products into one guided pass.
//! - [`wire`] — length-prefixed JSON protocol over stdio or a Unix
//!   socket, for the `spmm_serve` binary.
//! - [`replay`] — trace replay with optional cold-run bit-equality
//!   verification; drives the CI serve-smoke gate and the
//!   `serve_*` keys in `BENCH_pr.json`.
//! - [`json`] — the dependency-free JSON value type the wire format uses.

pub mod artifacts;
pub mod json;
pub mod registry;
pub mod replay;
pub mod service;
pub mod wire;

pub use artifacts::{ArtifactCache, ArtifactKey, ArtifactStats};
pub use registry::{InsertOutcome, MatrixKey, MatrixRegistry, RegistryStats};
pub use replay::{replay_trace, ReplayOptions, ReplaySummary};
pub use service::{
    AdmissionGate, AdmissionPermit, AdmissionStats, LoadReply, MultiplyReply, MultiplyRequest,
    ServeError, ServiceConfig, ServiceStats, SpmmService,
};
pub use wire::{handle_request, read_frame, serve_stdio, serve_unix, write_frame};
