//! `spmm_serve` — the long-lived SpMM service.
//!
//! Modes:
//!
//! - default / `--stdio`: one session over stdin/stdout, length-prefixed
//!   JSON frames (see `src/serve/wire.rs` for the protocol).
//! - `--socket PATH`: concurrent sessions over a Unix socket, one thread
//!   per connection, all sharing the registry/artifact/workspace state.
//! - `--replay TRACE.jsonl`: replay a request trace and print per-pass
//!   timing; with `--verify-cold` every multiply is re-run on a fresh
//!   cold context and the process exits nonzero on any bit drift (the CI
//!   serve-smoke gate).

use std::process::ExitCode;
use std::sync::Arc;

use hetero_spmm::serve::{
    replay_trace, serve_stdio, serve_unix, ReplayOptions, ServiceConfig, SpmmService,
};

const USAGE: &str = "\
usage: spmm_serve [--stdio]
       spmm_serve --socket PATH
       spmm_serve --replay TRACE.jsonl [--verify-cold] [--repeat N]
common options:
       --threads N        host threads for the shared pool
       --max-inflight N   concurrent requests (default 4)
       --queue-depth N    queued requests beyond inflight (default 64)
";

struct Args {
    mode: Mode,
    verify_cold: bool,
    repeat: usize,
    config: ServiceConfig,
}

enum Mode {
    Stdio,
    Socket(String),
    Replay(String),
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: Mode::Stdio,
        verify_cold: false,
        repeat: 1,
        config: ServiceConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--stdio" => args.mode = Mode::Stdio,
            "--socket" => args.mode = Mode::Socket(value("--socket")?),
            "--replay" => args.mode = Mode::Replay(value("--replay")?),
            "--verify-cold" => args.verify_cold = true,
            "--repeat" => {
                args.repeat = value("--repeat")?
                    .parse()
                    .map_err(|_| "--repeat needs an integer".to_string())?
            }
            "--threads" => {
                args.config.host_threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| "--threads needs an integer".to_string())?,
                )
            }
            "--max-inflight" => {
                args.config.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|_| "--max-inflight needs an integer".to_string())?
            }
            "--queue-depth" => {
                args.config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer".to_string())?
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn run_replay(service: &SpmmService, trace_path: &str, args: &Args) -> ExitCode {
    let trace = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("spmm_serve: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = ReplayOptions {
        verify_cold: args.verify_cold,
        wire_selftest: true,
    };
    let mut failed = false;
    for pass in 1..=args.repeat.max(1) {
        match replay_trace(service, &trace, &options) {
            Ok(summary) => {
                println!(
                    "pass {pass}: {} requests, {} multiplies ({} warm), {:.1} ms{}",
                    summary.requests,
                    summary.multiplies,
                    summary.warm_artifact_hits,
                    summary.wall.as_secs_f64() * 1e3,
                    if args.verify_cold {
                        ", cold-verified"
                    } else {
                        ""
                    },
                );
                for drift in &summary.drifts {
                    eprintln!("pass {pass}: BIT DRIFT: {drift}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("pass {pass}: replay failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if failed {
        eprintln!("spmm_serve: warm-vs-cold bit-identity violated");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("spmm_serve: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let service = SpmmService::new(args.config);
    match &args.mode {
        Mode::Stdio => match serve_stdio(&service) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("spmm_serve: session error: {e}");
                ExitCode::FAILURE
            }
        },
        Mode::Socket(path) => match serve_unix(Arc::new(service), std::path::Path::new(path)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("spmm_serve: socket error: {e}");
                ExitCode::FAILURE
            }
        },
        Mode::Replay(trace_path) => run_replay(&service, trace_path, &args),
    }
}
