//! `spmm` — command-line driver for the hetero-spmm library.
//!
//! ```text
//! spmm datasets                      list the Table I catalog
//! spmm info <dataset|file.mtx>       shape, nnz, histogram, power-law fit
//! spmm run <algo> <dataset> [scale]  run one algorithm, print the profile
//! spmm compare <dataset> [scale]     run every algorithm, print speedups
//! spmm sweep <dataset> [scale]       Figure 8 threshold sweep
//! spmm convert <in.mtx> <out.mtx>    parse, validate, and rewrite a matrix
//! ```
//!
//! `<algo>` ∈ hh-cpu | hipc2012 | mkl | cusparse | unsorted-wq | sorted-wq.
//! `[scale]` shrinks catalog clones (default 16; ignored for `.mtx` files).

use std::process::ExitCode;

use hetero_spmm::prelude::*;
use hetero_spmm::sparse::io;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("datasets") => cmd_datasets(),
        Some("info") => with_arg(&args, 1, "dataset or .mtx path", cmd_info),
        Some("run") => cmd_run(&args),
        Some("compare") => with_arg(&args, 1, "dataset", |d| cmd_compare(d, scale_arg(&args, 2))),
        Some("sweep") => with_arg(&args, 1, "dataset", |d| cmd_sweep(d, scale_arg(&args, 2))),
        Some("convert") => cmd_convert(&args),
        _ => {
            eprintln!("usage: spmm <datasets|info|run|compare|sweep|convert> …");
            eprintln!("see the module docs (`spmm --help` output) in src/bin/spmm.rs");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn with_arg(
    args: &[String],
    idx: usize,
    what: &str,
    f: impl FnOnce(&str) -> Result<(), String>,
) -> Result<(), String> {
    match args.get(idx) {
        Some(a) => f(a),
        None => Err(format!("missing argument: {what}")),
    }
}

fn scale_arg(args: &[String], idx: usize) -> usize {
    args.get(idx).and_then(|s| s.parse().ok()).unwrap_or(16)
}

/// Load by catalog name or Matrix Market path.
fn load(name: &str, scale: usize) -> Result<CsrMatrix<f64>, String> {
    if name.ends_with(".mtx") {
        io::read_matrix_market(name).map_err(|e| e.to_string())
    } else {
        Dataset::by_name(name)
            .map(|d| d.load(scale))
            .ok_or_else(|| format!("unknown dataset {name:?}; try `spmm datasets`"))
    }
}

fn cmd_datasets() -> Result<(), String> {
    println!("{:>16} {:>10} {:>11} {:>8}", "name", "rows", "nnz", "α");
    for e in CATALOG {
        println!(
            "{:>16} {:>10} {:>11} {:>8.2}",
            e.name, e.rows, e.nnz, e.alpha
        );
    }
    println!("\n(paper Table I; `spmm info <name>` loads the synthetic clone)");
    Ok(())
}

fn cmd_info(name: &str) -> Result<(), String> {
    let m = load(name, 16)?;
    println!(
        "{name}: {} x {}, {} nonzeros",
        m.nrows(),
        m.ncols(),
        m.nnz()
    );
    println!(
        "rows: mean {:.2} nnz, max {} nnz",
        m.mean_row_nnz(),
        m.max_row_nnz()
    );
    match fit_power_law(&m.row_sizes()) {
        Some(f) => println!(
            "power-law fit: α = {:.2} (xmin = {}, KS = {:.4}, tail n = {})",
            f.alpha, f.xmin, f.ks, f.tail_n
        ),
        None => println!("power-law fit: not enough positive rows"),
    }
    println!("\nrow histogram (log-binned):");
    let h = RowHistogram::from_matrix(&m);
    for (lo, n) in h.log_binned().into_iter().take(16) {
        let bar = "#".repeat(((n as f64).log10().max(0.0) * 6.0) as usize + 1);
        println!("  size≥{lo:<8} {n:>10} {bar}");
    }
    Ok(())
}

fn run_algo(
    algo: &str,
    ctx: &mut HeteroContext,
    a: &CsrMatrix<f64>,
) -> Result<SpmmOutput<f64>, String> {
    let units = WorkUnitConfig::auto(a.nrows());
    Ok(match algo {
        "hh-cpu" => hh_cpu(ctx, a, a, &HhCpuConfig::default()),
        "hipc2012" => hipc2012(ctx, a, a),
        "mkl" => mkl_like(ctx, a, a),
        "cusparse" => cusparse_like(ctx, a, a),
        "unsorted-wq" => unsorted_workqueue(ctx, a, a, units),
        "sorted-wq" => sorted_workqueue(ctx, a, a, units),
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let algo = args.get(1).ok_or("missing algorithm")?;
    let name = args.get(2).ok_or("missing dataset")?;
    let scale = scale_arg(args, 3);
    let a = load(name, scale)?;
    let mut ctx = HeteroContext::scaled(scale);
    let out = run_algo(algo, &mut ctx, &a)?;
    println!("{algo} on {name} (1/{scale} scale):");
    println!(
        "  C = A x A: {} nonzeros from {} tuples",
        out.c.nnz(),
        out.tuples_merged
    );
    if out.threshold_a > 0 {
        println!(
            "  threshold t = {} ({} HD rows)",
            out.threshold_a, out.hd_rows_a
        );
    }
    let p = out.profile;
    let w = p.walls();
    println!("  simulated total: {:.3} ms", p.total() / 1e6);
    println!(
        "  phases (ms): I {:.3} | II {:.3} (cpu {:.3} / gpu {:.3}) | III {:.3} \
         (cpu {:.3} / gpu {:.3}) | IV {:.3} | transfer {:.3}",
        w[0] / 1e6,
        w[1] / 1e6,
        p.phase2.cpu_ns / 1e6,
        p.phase2.gpu_ns / 1e6,
        w[2] / 1e6,
        p.phase3.cpu_ns / 1e6,
        p.phase3.gpu_ns / 1e6,
        w[3] / 1e6,
        p.transfer_ns / 1e6
    );
    Ok(())
}

fn cmd_compare(name: &str, scale: usize) -> Result<(), String> {
    let a = load(name, scale)?;
    let mut ctx = HeteroContext::scaled(scale);
    println!(
        "{name} (1/{scale} scale, {} rows, {} nnz):\n",
        a.nrows(),
        a.nnz()
    );
    let algos = [
        "hh-cpu",
        "hipc2012",
        "mkl",
        "cusparse",
        "unsorted-wq",
        "sorted-wq",
    ];
    let mut results = Vec::new();
    for algo in algos {
        let out = run_algo(algo, &mut ctx, &a)?;
        results.push((algo, out));
    }
    let hh_total = results[0].1.total_ns();
    println!(
        "{:>12} {:>12} {:>14}",
        "algorithm", "total ms", "HH-CPU speedup"
    );
    for (algo, out) in &results {
        println!(
            "{:>12} {:>12.3} {:>14.3}",
            algo,
            out.total_ns() / 1e6,
            out.total_ns() / hh_total
        );
    }
    Ok(())
}

fn cmd_sweep(name: &str, scale: usize) -> Result<(), String> {
    let a = load(name, scale)?;
    let mut ctx = HeteroContext::scaled(scale);
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9}",
        "t", "total ms", "II ms", "III ms", "HD rows"
    );
    let mut t = 2usize;
    let mut ladder = vec![0usize];
    while t <= a.max_row_nnz() {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(a.max_row_nnz() + 1);
    for t in ladder {
        let out = hh_cpu(&mut ctx, &a, &a, &HhCpuConfig::with_threshold(t));
        let p = out.profile;
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>9}",
            t,
            p.total() / 1e6,
            p.phase2.wall() / 1e6,
            p.phase3.wall() / 1e6,
            out.hd_rows_a
        );
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let input = args.get(1).ok_or("missing input path")?;
    let output = args.get(2).ok_or("missing output path")?;
    let m: CsrMatrix<f64> = io::read_matrix_market(input).map_err(|e| e.to_string())?;
    let mut f = std::fs::File::create(output).map_err(|e| e.to_string())?;
    io::write_matrix_market(&m, &mut f).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} x {}, {} nonzeros, duplicates merged, rows sorted)",
        output,
        m.nrows(),
        m.ncols(),
        m.nnz()
    );
    Ok(())
}
